//! Gathering-point selection for a charging group.
//!
//! The group meets its charger at a single point `p`; the spatially
//! relevant part of the group cost is
//!
//! ```text
//! τ_j · d(q_j, p)  +  Σ_{i∈S} κ_i · d(p_i, p)
//! ```
//!
//! a weighted Fermat-point objective over the members (weights: their
//! movement cost rates) and the charger (weight: its travel cost rate).
//! [`GatheringStrategy::Weiszfeld`] solves it near-exactly; the cheaper
//! strategies exist for the `abl_gathering` ablation and for CCSA's
//! fixed-point facility enumeration.

use crate::problem::CcsProblem;
use ccs_wrsn::entities::{ChargerId, DeviceId};
use ccs_wrsn::geometry::{weighted_geometric_median, Point, WeiszfeldOptions};

/// How a group's gathering point is chosen.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GatheringStrategy {
    /// Weighted geometric median of members + charger (Weiszfeld) —
    /// the near-optimal default.
    Weiszfeld,
    /// Unweighted centroid of member positions (fast, ignores weights and
    /// the charger).
    Centroid,
    /// The member position with the lowest objective (groups gather at one
    /// device).
    BestMember,
    /// Best point of a `k × k` grid over the field.
    Grid(usize),
}

/// The spatial objective `τ_j·d(q_j,p) + Σ κ_i·d(p_i,p)` at candidate `p`.
pub fn spatial_cost(
    problem: &CcsProblem,
    charger: ChargerId,
    members: &[DeviceId],
    p: &Point,
) -> f64 {
    let c = problem.charger(charger);
    let mut total = c.travel_cost_rate().value() * c.position().distance(p).value();
    for &d in members {
        let dev = problem.device(d);
        total += dev.move_cost_rate().value() * dev.position().distance(p).value();
    }
    total
}

/// Chooses the gathering point for `(charger, members)` under `strategy`.
///
/// Always returns a point inside the field.
///
/// # Panics
///
/// Panics if `members` is empty or `Grid(0)` is passed.
pub fn gathering_point(
    problem: &CcsProblem,
    charger: ChargerId,
    members: &[DeviceId],
    strategy: GatheringStrategy,
) -> Point {
    assert!(!members.is_empty(), "a group needs at least one member");
    let field = problem.scenario().field();
    match strategy {
        GatheringStrategy::Weiszfeld => {
            let mut anchors: Vec<Point> = members
                .iter()
                .map(|&d| problem.device(d).position())
                .collect();
            let mut weights: Vec<f64> = members
                .iter()
                .map(|&d| problem.device(d).move_cost_rate().value())
                .collect();
            let c = problem.charger(charger);
            anchors.push(c.position());
            weights.push(c.travel_cost_rate().value());
            // All-zero weights (free movement): any point works; use centroid.
            if weights.iter().sum::<f64>() <= 0.0 {
                return field.clamp(Point::centroid(&anchors).expect("nonempty anchors"));
            }
            let median = weighted_geometric_median(&anchors, &weights, WeiszfeldOptions::default())
                .expect("validated nonempty anchors and nonnegative weights");
            field.clamp(median.point)
        }
        GatheringStrategy::Centroid => {
            let anchors: Vec<Point> = members
                .iter()
                .map(|&d| problem.device(d).position())
                .collect();
            field.clamp(Point::centroid(&anchors).expect("nonempty members"))
        }
        GatheringStrategy::BestMember => members
            .iter()
            .map(|&d| problem.device(d).position())
            .min_by(|a, b| {
                spatial_cost(problem, charger, members, a)
                    .total_cmp(&spatial_cost(problem, charger, members, b))
            })
            .expect("nonempty members"),
        GatheringStrategy::Grid(k) => {
            assert!(k >= 1, "grid resolution must be >= 1");
            field
                .grid(k)
                .into_iter()
                .min_by(|a, b| {
                    spatial_cost(problem, charger, members, a)
                        .total_cmp(&spatial_cost(problem, charger, members, b))
                })
                .expect("grid is nonempty")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccs_wrsn::scenario::ScenarioGenerator;

    fn problem() -> CcsProblem {
        CcsProblem::new(ScenarioGenerator::new(3).devices(8).chargers(3).generate())
    }

    fn ids(v: &[u32]) -> Vec<DeviceId> {
        v.iter().map(|&i| DeviceId::new(i)).collect()
    }

    #[test]
    fn weiszfeld_beats_or_matches_other_strategies() {
        let p = problem();
        let members = ids(&[0, 1, 2, 3]);
        let c = ChargerId::new(0);
        let w = gathering_point(&p, c, &members, GatheringStrategy::Weiszfeld);
        let w_cost = spatial_cost(&p, c, &members, &w);
        for strategy in [
            GatheringStrategy::Centroid,
            GatheringStrategy::BestMember,
            GatheringStrategy::Grid(8),
        ] {
            let q = gathering_point(&p, c, &members, strategy);
            let q_cost = spatial_cost(&p, c, &members, &q);
            assert!(
                w_cost <= q_cost + 1e-6,
                "weiszfeld {w_cost} should beat {strategy:?} at {q_cost}"
            );
        }
    }

    #[test]
    fn singleton_group_gathers_near_itself() {
        // With a typical device move rate below the charger travel rate the
        // median sits at the charger; with a heavy device it sits at the
        // device. Either way the point must be on the segment (objective at
        // the chosen point <= objective at both endpoints).
        let p = problem();
        let members = ids(&[0]);
        let c = ChargerId::new(1);
        let g = gathering_point(&p, c, &members, GatheringStrategy::Weiszfeld);
        let at_dev = spatial_cost(&p, c, &members, &p.device(DeviceId::new(0)).position());
        let at_chg = spatial_cost(&p, c, &members, &p.charger(c).position());
        let at_g = spatial_cost(&p, c, &members, &g);
        // The 2-anchor objective is linear along the segment, so the true
        // optimum is an endpoint; Weiszfeld approaches it geometrically, so
        // allow a 1% slack.
        let best = at_dev.min(at_chg);
        assert!(
            at_g <= best * 1.01 + 1e-9,
            "gathered at {at_g}, endpoints {at_dev} / {at_chg}"
        );
    }

    #[test]
    fn best_member_returns_a_member_position() {
        let p = problem();
        let members = ids(&[2, 4, 6]);
        let g = gathering_point(
            &p,
            ChargerId::new(0),
            &members,
            GatheringStrategy::BestMember,
        );
        assert!(members
            .iter()
            .any(|&d| p.device(d).position().distance(&g).value() < 1e-12));
    }

    #[test]
    fn all_strategies_stay_in_field() {
        let p = problem();
        let members = ids(&[0, 5, 7]);
        for strategy in [
            GatheringStrategy::Weiszfeld,
            GatheringStrategy::Centroid,
            GatheringStrategy::BestMember,
            GatheringStrategy::Grid(3),
        ] {
            let g = gathering_point(&p, ChargerId::new(2), &members, strategy);
            assert!(
                p.scenario().field().contains(&g),
                "{strategy:?} left the field"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn empty_group_panics() {
        let p = problem();
        let _ = gathering_point(&p, ChargerId::new(0), &[], GatheringStrategy::Centroid);
    }
}
