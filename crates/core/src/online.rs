//! Event-driven online mode: streaming arrivals, deadlines, and charger
//! tanks.
//!
//! The paper's CCS problem is one-shot — every device needs charging at
//! time zero. This module serves the *online* variant: requests arrive
//! over virtual time (a seeded [`ccs_wrsn::arrival`] stream), each with
//! an absolute deadline, and the charger fleet holds finite on-board
//! energy ([`MobileCharger`]) drained by travel and delivery, refilled
//! only at the depot.
//!
//! # The event loop
//!
//! [`OnlineSim`] advances a virtual clock through a deterministic event
//! queue — arrivals, deadline expiries, charger releases — and re-plans
//! on every event that could change the best dispatch:
//!
//! 1. **Residual extraction.** Pending requests are densely renumbered
//!    into a residual [`CcsProblem`] via exactly the recovery engine's
//!    machinery ([`crate::recover::residual_problem`]'s origin-map
//!    scheme), except that only *idle* chargers are offered — each at
//!    its live position, renumbered with its own origin map.
//! 2. **Incremental re-pricing.** The residual is solved by the chosen
//!    [`OnlinePolicy`]: online-CCSGA runs the hedonic engine in
//!    activity-driven worklist mode (`DeltaEval` + dirty worklists), so
//!    only coalitions whose neighborhood changed are re-priced; the
//!    naive FCFS baseline dispatches each request alone to the nearest
//!    idle charger.
//! 3. **Commitment.** Each planned group is admitted only if the tour
//!    completes before every member's deadline and the charger's tank
//!    covers the tour plus the ride home (refilling first at the depot
//!    when it doesn't but a full tank would). Admitted commitments are
//!    **immutable**: later re-plans never revisit them.
//!
//! A request that is never admitted is counted as a deadline miss when
//! its expiry event fires, so `served + missed == arrivals` always
//! holds at the end of a run.
//!
//! Everything is deterministic: the event queue is totally ordered by
//! `(time, sequence)`, the solvers are bit-identical at any `ccs_par`
//! thread count, and each [`StepOutcome`] records the exact residual it
//! solved — the determinism proptest replays it from scratch and
//! demands the identical schedule.
//!
//! # Examples
//!
//! ```
//! use ccs_core::online::{OnlineConfig, OnlineSim};
//! use ccs_core::prelude::*;
//! use ccs_wrsn::arrival::ArrivalGenerator;
//! use ccs_wrsn::scenario::ScenarioGenerator;
//!
//! let scenario = ScenarioGenerator::new(1).devices(10).chargers(3).generate();
//! let stream = ArrivalGenerator::new(1).rate(0.2).horizon(60.0).slack(600.0).generate(10);
//! let report = OnlineSim::new(
//!     CcsProblem::new(scenario),
//!     stream,
//!     &EqualShare,
//!     OnlineConfig::default(),
//! )
//! .run();
//! assert_eq!(
//!     report.metrics.served + report.metrics.missed,
//!     report.metrics.arrivals
//! );
//! ```

use crate::algo::{ccsga, CcsgaOptions};
use crate::cost::evaluate_facility;
use crate::problem::CcsProblem;
use crate::schedule::{GroupPlan, Schedule};
use crate::sharing::CostSharing;
use ccs_wrsn::arrival::ChargeRequest;
use ccs_wrsn::entities::{Charger, ChargerId, DeviceId};
use ccs_wrsn::geometry::Point;
use ccs_wrsn::mobile::{EnergyModel, MobileCharger};
use ccs_wrsn::scenario::Scenario;
use ccs_wrsn::units::{Cost, Joules, Meters, Seconds};
use std::collections::BinaryHeap;

/// Dispatch policy of the online loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OnlinePolicy {
    /// Online-CCSGA: hedonic coalition formation over the residual
    /// problem, re-priced incrementally by the worklist engine.
    Ccsga(CcsgaOptions),
    /// Naive first-come-first-served: every request is dispatched alone
    /// to the nearest idle charger, in arrival order.
    Fcfs,
}

/// Configuration of one online run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnlineConfig {
    /// The dispatch policy (default: worklist-mode CCSGA).
    pub policy: OnlinePolicy,
    /// Per-charger tank parameters.
    pub energy: EnergyModel,
}

impl Default for OnlineConfig {
    fn default() -> Self {
        OnlineConfig {
            policy: OnlinePolicy::Ccsga(CcsgaOptions {
                worklist: true,
                ..CcsgaOptions::default()
            }),
            energy: EnergyModel::default(),
        }
    }
}

/// What one event did to the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// Request `index` of the stream arrived.
    Arrival(usize),
    /// Request `index`'s deadline passed (a miss if it was still waiting).
    Expiry(usize),
    /// Charger `index` finished its tour and is idle again.
    ChargerFree(usize),
}

/// One immutable admitted commitment.
#[derive(Debug, Clone, PartialEq)]
pub struct Commitment {
    /// The hired charger (original fleet id).
    pub charger: ChargerId,
    /// Stream indices of the served requests (sorted).
    pub requests: Vec<usize>,
    /// The requesting devices (original ids, aligned with `requests`).
    pub devices: Vec<DeviceId>,
    /// Where the group gathers.
    pub gathering_point: Point,
    /// Virtual time the commitment was admitted.
    pub committed_at: Seconds,
    /// Virtual time charging completes (guaranteed before every member's
    /// deadline — that is the admission test).
    pub completes_at: Seconds,
    /// Energy delivered to the group.
    pub delivered: Joules,
    /// The group's bill under the run's cost sharing.
    pub bill: Cost,
    /// Whether the charger detoured to the depot for a refill first.
    pub refill_first: bool,
}

/// The residual a re-plan solved, with both origin maps — enough to
/// replay the solve from scratch and demand the identical answer.
#[derive(Debug)]
pub struct ReplanRecord {
    /// The extracted residual problem (dense ids).
    pub problem: CcsProblem,
    /// Residual device `i` is stream request `requests[i]`.
    pub requests: Vec<usize>,
    /// Residual charger `j` is fleet charger `chargers[j]`.
    pub chargers: Vec<ChargerId>,
    /// The schedule the policy produced for `problem`.
    pub schedule: Schedule,
}

/// Everything one [`OnlineSim::step`] did.
#[derive(Debug)]
pub struct StepOutcome {
    /// Virtual time of the event.
    pub time: Seconds,
    /// The event itself.
    pub kind: EventKind,
    /// The re-plan this event triggered (`None` when nothing was pending
    /// or no charger was idle).
    pub replan: Option<ReplanRecord>,
    /// Commitments admitted from that re-plan.
    pub committed: Vec<Commitment>,
}

/// Aggregated service metrics of a finished run.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct OnlineMetrics {
    /// Requests that arrived.
    pub arrivals: usize,
    /// Requests whose charging completed before their deadline.
    pub served: usize,
    /// Requests whose deadline passed unserved.
    pub missed: usize,
    /// `missed / arrivals` (0 for an empty stream).
    pub miss_rate: f64,
    /// Busy charger-seconds over `fleet * makespan`, in `[0, 1]`.
    pub charger_utilization: f64,
    /// Energy delivered to devices.
    pub energy_delivered: Joules,
    /// Tank energy the fleet consumed (travel + delivery + depot rides).
    pub energy_consumed: Joules,
    /// `energy_consumed / served` in joules per request (0 when none).
    pub energy_per_served: f64,
    /// Completed depot refill trips across the fleet.
    pub depot_cycles: usize,
    /// `served / depot_cycles` (`served` itself when no refill happened).
    pub served_per_depot_cycle: f64,
    /// Re-plans that actually ran a solver.
    pub replans: usize,
    /// Virtual time of the last processed event.
    pub makespan: Seconds,
}

/// Final outcome of [`OnlineSim::run`].
#[derive(Debug)]
pub struct OnlineReport {
    /// Aggregated service metrics.
    pub metrics: OnlineMetrics,
    /// Every admitted commitment, in admission order.
    pub commitments: Vec<Commitment>,
}

/// Lifecycle of one stream request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ReqState {
    Waiting,
    Committed,
    Missed,
}

/// A queue entry; the `Ord` impl inverts `(time, seq)` so the max-heap
/// pops the earliest event, deterministically tie-broken by insertion.
#[derive(Debug, Clone, Copy)]
struct Event {
    time: f64,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The event-driven online simulator (see the module docs).
#[derive(Debug)]
pub struct OnlineSim<'a> {
    problem: CcsProblem,
    requests: Vec<ChargeRequest>,
    sharing: &'a dyn CostSharing,
    config: OnlineConfig,
    state: Vec<ReqState>,
    /// Waiting stream indices, kept sorted (= arrival order).
    pending: Vec<usize>,
    chargers: Vec<MobileCharger>,
    free_at: Vec<f64>,
    busy_s: Vec<f64>,
    events: BinaryHeap<Event>,
    seq: u64,
    now: f64,
    served: usize,
    missed: usize,
    replans: usize,
    energy_delivered: Joules,
    energy_consumed: Joules,
    commitments: Vec<Commitment>,
}

impl<'a> OnlineSim<'a> {
    /// Builds the simulator: every request seeds one arrival and one
    /// expiry event; the fleet starts parked at the chargers' scenario
    /// positions (their depots) on full tanks.
    ///
    /// # Panics
    ///
    /// Panics if a request names a device outside the scenario or the
    /// energy model is invalid.
    pub fn new(
        problem: CcsProblem,
        requests: Vec<ChargeRequest>,
        sharing: &'a dyn CostSharing,
        config: OnlineConfig,
    ) -> Self {
        let n = problem.num_devices();
        for req in &requests {
            assert!(
                req.device.index() < n,
                "request names device {} outside the {n}-device scenario",
                req.device
            );
        }
        let chargers: Vec<MobileCharger> = problem
            .scenario()
            .chargers()
            .iter()
            .map(|c| MobileCharger::new(c.position(), config.energy))
            .collect();
        let fleet = chargers.len();
        let mut sim = OnlineSim {
            problem,
            sharing,
            config,
            state: vec![ReqState::Waiting; requests.len()],
            pending: Vec::new(),
            chargers,
            free_at: vec![0.0; fleet],
            busy_s: vec![0.0; fleet],
            events: BinaryHeap::new(),
            seq: 0,
            now: 0.0,
            served: 0,
            missed: 0,
            replans: 0,
            energy_delivered: Joules::ZERO,
            energy_consumed: Joules::ZERO,
            commitments: Vec::new(),
            requests,
        };
        for i in 0..sim.requests.len() {
            let (arrival, deadline) = (sim.requests[i].arrival, sim.requests[i].deadline);
            sim.push_event(arrival.value(), EventKind::Arrival(i));
            sim.push_event(deadline.value(), EventKind::Expiry(i));
        }
        sim
    }

    fn push_event(&mut self, time: f64, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        self.events.push(Event { time, seq, kind });
    }

    /// Processes the next event; `None` once the queue is drained.
    pub fn step(&mut self) -> Option<StepOutcome> {
        let event = self.events.pop()?;
        self.now = event.time;
        let mut replan_needed = false;
        match event.kind {
            EventKind::Arrival(i) => {
                ccs_telemetry::counter!("online.arrivals").incr();
                debug_assert_eq!(self.state[i], ReqState::Waiting);
                self.pending.push(i);
                replan_needed = true;
            }
            EventKind::Expiry(i) => {
                if self.state[i] == ReqState::Waiting {
                    self.state[i] = ReqState::Missed;
                    self.pending.retain(|&p| p != i);
                    self.missed += 1;
                    ccs_telemetry::counter!("online.missed").incr();
                }
            }
            EventKind::ChargerFree(_) => {
                replan_needed = true;
            }
        }
        let (replan, committed) = if replan_needed {
            self.replan()
        } else {
            (None, Vec::new())
        };
        Some(StepOutcome {
            time: Seconds::new(self.now),
            kind: event.kind,
            replan,
            committed,
        })
    }

    /// Drives the loop to completion and aggregates the metrics.
    pub fn run(mut self) -> OnlineReport {
        while self.step().is_some() {}
        let arrivals = self.requests.len();
        debug_assert_eq!(self.served + self.missed, arrivals);
        let fleet = self.chargers.len();
        let makespan = self.now;
        let busy: f64 = self.busy_s.iter().sum();
        let depot_cycles: usize = self.chargers.iter().map(|c| c.depot_cycles()).sum();
        let metrics = OnlineMetrics {
            arrivals,
            served: self.served,
            missed: self.missed,
            miss_rate: if arrivals == 0 {
                0.0
            } else {
                self.missed as f64 / arrivals as f64
            },
            charger_utilization: if fleet == 0 || makespan <= 0.0 {
                0.0
            } else {
                busy / (fleet as f64 * makespan)
            },
            energy_delivered: self.energy_delivered,
            energy_consumed: self.energy_consumed,
            energy_per_served: if self.served == 0 {
                0.0
            } else {
                self.energy_consumed.value() / self.served as f64
            },
            depot_cycles,
            served_per_depot_cycle: self.served as f64 / depot_cycles.max(1) as f64,
            replans: self.replans,
            makespan: Seconds::new(makespan),
        };
        OnlineReport {
            metrics,
            commitments: self.commitments,
        }
    }

    /// Waiting requests that can still make their deadline at all.
    fn plannable(&self) -> Vec<usize> {
        self.pending
            .iter()
            .copied()
            .filter(|&i| self.requests[i].deadline.value() > self.now)
            .collect()
    }

    /// Idle charger indices at the current virtual time.
    fn idle_chargers(&self) -> Vec<usize> {
        (0..self.chargers.len())
            .filter(|&c| self.free_at[c] <= self.now)
            .collect()
    }

    /// Extracts the residual problem over `plannable` requests and
    /// `idle` chargers — the recovery engine's dense renumbering with
    /// origin maps, extended with a charger origin map (each idle
    /// charger is offered at its *live* position).
    fn residual(&self, plannable: &[usize], idle: &[usize]) -> CcsProblem {
        let scenario = self.problem.scenario();
        let ids: Vec<DeviceId> = plannable.iter().map(|&i| self.requests[i].device).collect();
        let positions: Vec<Point> = ids.iter().map(|d| scenario.device(*d).position()).collect();
        let devices = residual_devices(scenario, &ids, &positions);
        let chargers: Vec<Charger> = idle
            .iter()
            .enumerate()
            .map(|(j, &c)| {
                let orig = &scenario.chargers()[c];
                let mut builder =
                    Charger::builder(ChargerId::new(j as u32), self.chargers[c].position())
                        .base_fee(orig.base_fee())
                        .travel_cost_rate(orig.travel_cost_rate())
                        .energy_price(orig.energy_price())
                        .occupancy_rate(orig.occupancy_rate())
                        .speed(orig.speed())
                        .wpt(*orig.wpt());
                if let Some(budget) = orig.energy_budget() {
                    builder = builder.energy_budget(budget);
                }
                builder.build()
            })
            .collect();
        let residual = Scenario::new(scenario.field(), devices, chargers)
            .expect("residual devices and chargers are renumberings of valid entities");
        CcsProblem::with_params(residual, self.problem.params().clone())
    }

    /// Re-plans the residual and admits commitments. Returns the replay
    /// record (when a solve ran) and the admitted commitments.
    fn replan(&mut self) -> (Option<ReplanRecord>, Vec<Commitment>) {
        let plannable = self.plannable();
        let idle = self.idle_chargers();
        if plannable.is_empty() || idle.is_empty() {
            return (None, Vec::new());
        }
        let _span = ccs_telemetry::span!("online.replan");
        self.replans += 1;
        ccs_telemetry::counter!("online.replans").incr();
        let residual = self.residual(&plannable, &idle);
        let schedule = match self.config.policy {
            OnlinePolicy::Ccsga(options) => ccsga(&residual, self.sharing, options).schedule,
            OnlinePolicy::Fcfs => fcfs_schedule(&residual, self.sharing),
        };
        let committed = self.admit(&residual, &schedule, &plannable, &idle);
        let record = ReplanRecord {
            problem: residual,
            requests: plannable,
            chargers: idle.iter().map(|&c| ChargerId::new(c as u32)).collect(),
            schedule,
        };
        (Some(record), committed)
    }

    /// Admission: walks the residual schedule's groups in order and
    /// commits each one whose tour completes before every member's
    /// deadline and fits the charger's tank (with a depot refill first
    /// when the live tank is short but a full one suffices). Coalitions
    /// the test rejects are then *degraded* — their members retried as
    /// solo dispatches, earliest deadline first, on the chargers the
    /// schedule left idle (the recovery engine's degrade idiom). What
    /// still fails stays pending for later re-plans. Commitments are
    /// immutable.
    fn admit(
        &mut self,
        residual: &CcsProblem,
        schedule: &Schedule,
        plannable: &[usize],
        idle: &[usize],
    ) -> Vec<Commitment> {
        let mut committed = Vec::new();
        // A charger can star in several residual groups only if the
        // solver mis-assigned; first group wins, deterministically.
        let mut used = vec![false; idle.len()];
        for group in schedule.groups() {
            if let Some(c) = self.try_commit(residual, group, plannable, idle, &mut used) {
                committed.push(c);
            }
        }
        // The FCFS baseline stays naive on purpose: no second chance for
        // a dispatch its own rule rejected.
        if matches!(self.config.policy, OnlinePolicy::Ccsga(_)) {
            committed.extend(self.degrade(residual, plannable, idle, &mut used));
        }
        committed
    }

    /// Degradation pass: every request the coalition schedule could not
    /// place is retried alone — earliest deadline first — on the nearest
    /// still-unused idle charger that passes admission.
    fn degrade(
        &mut self,
        residual: &CcsProblem,
        plannable: &[usize],
        idle: &[usize],
        used: &mut [bool],
    ) -> Vec<Commitment> {
        let mut leftovers: Vec<usize> = (0..plannable.len())
            .filter(|&m| self.state[plannable[m]] == ReqState::Waiting)
            .collect();
        leftovers.sort_by(|&a, &b| {
            let (da, db) = (self.requests[plannable[a]], self.requests[plannable[b]]);
            da.deadline
                .value()
                .total_cmp(&db.deadline.value())
                .then(a.cmp(&b))
        });
        let mut committed = Vec::new();
        for m in leftovers {
            if used.iter().all(|&u| u) {
                break;
            }
            let member = DeviceId::new(m as u32);
            let pos = residual.scenario().device(member).position();
            let mut order: Vec<usize> = (0..idle.len()).filter(|&j| !used[j]).collect();
            order.sort_by(|&a, &b| {
                self.chargers[idle[a]]
                    .position()
                    .distance(&pos)
                    .value()
                    .total_cmp(&self.chargers[idle[b]].position().distance(&pos).value())
                    .then(a.cmp(&b))
            });
            for j in order {
                let members = vec![member];
                let choice = evaluate_facility(residual, ChargerId::new(j as u32), &members, pos);
                let solo = GroupPlan::from_facility(residual, members, choice, self.sharing);
                if let Some(c) = self.try_commit(residual, &solo, plannable, idle, used) {
                    ccs_telemetry::counter!("online.degraded").incr();
                    committed.push(c);
                    break;
                }
            }
        }
        committed
    }

    /// Tries to admit one residual group: deadline test, tank test (with
    /// a refill-first fallback), then the immutable commitment. Returns
    /// `None` — leaving every request pending — when any test fails.
    fn try_commit(
        &mut self,
        residual: &CcsProblem,
        group: &GroupPlan,
        plannable: &[usize],
        idle: &[usize],
        used: &mut [bool],
    ) -> Option<Commitment> {
        let local_charger = group.charger.index();
        if used[local_charger] {
            return None;
        }
        let fleet_index = idle[local_charger];
        let stream: Vec<usize> = group.members.iter().map(|m| plannable[m.index()]).collect();
        let devices: Vec<DeviceId> = stream.iter().map(|&i| self.requests[i].device).collect();
        let gp = group.gathering_point;
        let delivered = residual.group_demand(&group.members);
        let scenario = self.problem.scenario();

        // Tour timing: everyone travels to the gathering point, then
        // the whole group charges by wireless transfer at contact.
        let member_travel = devices.iter().fold(0.0f64, |acc, d| {
            let dev = scenario.device(*d);
            acc.max(dev.position().distance(&gp).value() / dev.speed().value())
        });
        let orig_charger = &scenario.chargers()[fleet_index];
        let charge_time = orig_charger
            .wpt()
            .charge_time(delivered, Meters::ZERO)
            .ok()?;

        // Tank check at the live level, then from a full tank via a
        // depot detour; infeasible even full -> the group can never
        // be served by this charger, skip it.
        let mc = &self.chargers[fleet_index];
        let travel = mc.position().distance(&gp);
        let home = gp.distance(&mc.depot());
        let speed = orig_charger.speed().value();
        let (refill_first, charger_leg_s) = if mc.can_cover(travel, delivered, home) {
            (false, travel.value() / speed)
        } else {
            let to_depot = mc.position().distance(&mc.depot());
            let from_depot = mc.depot().distance(&gp);
            if !mc.can_cover_from_full(from_depot, delivered, home) {
                return None;
            }
            (true, (to_depot.value() + from_depot.value()) / speed)
        };

        let start = self.now + charger_leg_s.max(member_travel);
        let done = start + charge_time.value();
        if stream
            .iter()
            .any(|&i| done > self.requests[i].deadline.value())
        {
            return None;
        }

        // Admit: mutate the charger, retire the requests, schedule
        // the release.
        used[local_charger] = true;
        let mc = &mut self.chargers[fleet_index];
        let mut consumed = Joules::ZERO;
        if refill_first {
            let before = mc.energy();
            let ride = mc.refill();
            consumed += Joules::new((ride.value() * mc.model().ecr_move).min(before.value()));
            ccs_telemetry::counter!("online.refills").incr();
        }
        let travel_used = if refill_first {
            mc.depot().distance(&gp)
        } else {
            travel
        };
        consumed += mc.model().tour_energy(travel_used, delivered);
        mc.commit(gp, travel_used, delivered);
        self.free_at[fleet_index] = done;
        self.busy_s[fleet_index] += done - self.now;
        self.push_event(done, EventKind::ChargerFree(fleet_index));
        for &i in &stream {
            self.state[i] = ReqState::Committed;
        }
        self.pending.retain(|p| !stream.contains(p));
        self.served += stream.len();
        self.energy_delivered += delivered;
        self.energy_consumed += consumed;
        ccs_telemetry::counter!("online.served").add(stream.len() as u64);
        ccs_telemetry::counter!("online.commitments").incr();
        let commitment = Commitment {
            charger: ChargerId::new(fleet_index as u32),
            requests: stream,
            devices,
            gathering_point: gp,
            committed_at: Seconds::new(self.now),
            completes_at: Seconds::new(done),
            delivered,
            bill: group.bill.total(),
            refill_first,
        };
        self.commitments.push(commitment.clone());
        Some(commitment)
    }
}

/// One stateless re-plan over `pending` devices — the daemon's
/// `online_step` ingest path. Every charger is offered idle at its
/// scenario position and every pending request is plannable now; the
/// residual extraction is [`crate::recover::residual_problem`] verbatim,
/// so residual device `i` maps back to `pending[i]`.
///
/// # Panics
///
/// Panics if `pending` is empty or names a device outside the problem.
pub fn plan_step(
    problem: &CcsProblem,
    pending: &[DeviceId],
    sharing: &dyn CostSharing,
    policy: OnlinePolicy,
) -> Schedule {
    assert!(
        !pending.is_empty(),
        "a step needs at least one pending request"
    );
    let positions: Vec<Point> = pending
        .iter()
        .map(|&d| problem.scenario().device(d).position())
        .collect();
    let residual = crate::recover::residual_problem(problem, pending, &positions);
    match policy {
        OnlinePolicy::Ccsga(options) => ccsga(&residual, sharing, options).schedule,
        OnlinePolicy::Fcfs => fcfs_schedule(&residual, sharing),
    }
}

/// Re-builds the residual device list — the same dense renumbering as
/// [`crate::recover::residual_problem`], duplicated here only because the
/// online residual also subsets chargers (which that helper keeps whole).
fn residual_devices(
    scenario: &Scenario,
    ids: &[DeviceId],
    positions: &[Point],
) -> Vec<ccs_wrsn::entities::Device> {
    ids.iter()
        .zip(positions)
        .enumerate()
        .map(|(i, (&orig, &pos))| {
            let dev = scenario.device(orig);
            ccs_wrsn::entities::Device::builder(DeviceId::new(i as u32), pos)
                .battery(*dev.battery())
                .demand(dev.demand())
                .move_cost_rate(dev.move_cost_rate())
                .speed(dev.speed())
                .build()
        })
        .collect()
}

/// The naive baseline: requests in arrival order, each dispatched alone
/// to the nearest still-unassigned charger, gathering at the device's
/// own position (nobody moves but the charger). One request per charger
/// per re-plan; the overflow stays unplanned.
fn fcfs_schedule(residual: &CcsProblem, sharing: &dyn CostSharing) -> Schedule {
    let scenario = residual.scenario();
    let mut taken = vec![false; residual.num_chargers()];
    let mut groups = Vec::new();
    for device in scenario.devices() {
        let pos = device.position();
        let nearest = (0..residual.num_chargers())
            .filter(|&c| !taken[c])
            .min_by(|&a, &b| {
                scenario.chargers()[a]
                    .position()
                    .distance(&pos)
                    .value()
                    .total_cmp(&scenario.chargers()[b].position().distance(&pos).value())
                    .then(a.cmp(&b))
            });
        let Some(c) = nearest else { break };
        taken[c] = true;
        let members = vec![device.id()];
        let choice = evaluate_facility(residual, ChargerId::new(c as u32), &members, pos);
        groups.push(GroupPlan::from_facility(residual, members, choice, sharing));
    }
    Schedule::new(groups, "fcfs", sharing.name())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sharing::EqualShare;
    use ccs_wrsn::arrival::ArrivalGenerator;
    use ccs_wrsn::scenario::ScenarioGenerator;

    fn problem(seed: u64, devices: usize, chargers: usize) -> CcsProblem {
        CcsProblem::new(
            ScenarioGenerator::new(seed)
                .devices(devices)
                .chargers(chargers)
                .generate(),
        )
    }

    fn easy_stream(seed: u64, n: usize) -> Vec<ChargeRequest> {
        ArrivalGenerator::new(seed)
            .rate(0.05)
            .horizon(200.0)
            .slack(100_000.0)
            .generate(n)
    }

    #[test]
    fn every_request_is_accounted_served_or_missed() {
        let report = OnlineSim::new(
            problem(2, 12, 3),
            easy_stream(2, 12),
            &EqualShare,
            OnlineConfig::default(),
        )
        .run();
        let m = &report.metrics;
        assert!(m.arrivals > 0, "stream must not be empty");
        assert_eq!(m.served + m.missed, m.arrivals);
        assert_eq!(
            report
                .commitments
                .iter()
                .map(|c| c.requests.len())
                .sum::<usize>(),
            m.served
        );
    }

    #[test]
    fn generous_slack_serves_everything() {
        let report = OnlineSim::new(
            problem(3, 10, 3),
            easy_stream(3, 10),
            &EqualShare,
            OnlineConfig::default(),
        )
        .run();
        assert_eq!(report.metrics.missed, 0, "easy stream must not miss");
        assert_eq!(report.metrics.miss_rate, 0.0);
        assert!(report.metrics.charger_utilization > 0.0);
    }

    #[test]
    fn impossible_deadlines_all_miss() {
        let stream: Vec<ChargeRequest> = easy_stream(4, 10)
            .into_iter()
            .map(|mut r| {
                r.deadline = Seconds::new(r.arrival.value() + 1e-6);
                r
            })
            .collect();
        let arrivals = stream.len();
        let report = OnlineSim::new(
            problem(4, 10, 3),
            stream,
            &EqualShare,
            OnlineConfig::default(),
        )
        .run();
        assert_eq!(report.metrics.missed, arrivals);
        assert_eq!(report.metrics.served, 0);
        assert_eq!(report.metrics.miss_rate, 1.0);
    }

    #[test]
    fn commitments_complete_before_every_member_deadline() {
        let requests = easy_stream(5, 12);
        let report = OnlineSim::new(
            problem(5, 12, 3),
            requests.clone(),
            &EqualShare,
            OnlineConfig::default(),
        )
        .run();
        for c in &report.commitments {
            for &i in &c.requests {
                assert!(
                    c.completes_at <= requests[i].deadline,
                    "commitment past request {i}'s deadline"
                );
                assert!(c.committed_at >= requests[i].arrival);
            }
        }
    }

    #[test]
    fn tiny_tanks_force_depot_cycles() {
        let config = OnlineConfig {
            energy: EnergyModel {
                // Enough for roughly one tour, so sustained service has
                // to cycle through the depot.
                battery_cap: Joules::new(16_000.0),
                ecr_move: 10.0,
                ecr_charge: 1.25,
            },
            ..OnlineConfig::default()
        };
        let report =
            OnlineSim::new(problem(6, 12, 2), easy_stream(6, 12), &EqualShare, config).run();
        assert!(
            report.metrics.depot_cycles > 0,
            "a one-tour tank must refill at least once over {} served",
            report.metrics.served
        );
        assert!(report.metrics.served > 0, "refills must not starve service");
        assert!(report.commitments.iter().any(|c| c.refill_first));
    }

    #[test]
    fn fcfs_policy_runs_and_accounts() {
        let config = OnlineConfig {
            policy: OnlinePolicy::Fcfs,
            ..OnlineConfig::default()
        };
        let report =
            OnlineSim::new(problem(7, 12, 3), easy_stream(7, 12), &EqualShare, config).run();
        let m = &report.metrics;
        assert_eq!(m.served + m.missed, m.arrivals);
        assert!(
            report.commitments.iter().all(|c| c.requests.len() == 1),
            "fcfs never forms coalitions"
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let fingerprint = || {
            let report = OnlineSim::new(
                problem(8, 14, 3),
                easy_stream(8, 14),
                &EqualShare,
                OnlineConfig::default(),
            )
            .run();
            (
                report.metrics.served,
                report.metrics.missed,
                report.metrics.replans,
                report.metrics.energy_consumed.value().to_bits(),
                report.commitments.len(),
            )
        };
        assert_eq!(fingerprint(), fingerprint());
    }
}
