//! CCSGA — the coalition-formation game algorithm for large-scale CCS.
//!
//! The CCS instance induces a hedonic game: a device's cost inside a
//! coalition is its bill share (under the active cost-sharing scheme) at
//! the coalition's best facility, plus its own moving cost to that
//! facility's gathering point. Devices perform selfish switch operations
//! (with the no-revisit history that makes the dynamics acyclic — see
//! `ccs-coalition`) until no admissible improving switch remains; the
//! resulting partition is checked for pure Nash stability and converted to
//! a schedule.
//!
//! Facility choices and shares are memoized per coalition composition in a
//! thread-safe [`CoalitionCache`] shared across rounds, so the game
//! engine's many repeated evaluations stay cheap — including when the
//! engine's best-response scan evaluates candidate moves in parallel
//! (`ccs-par`). Cache effectiveness is visible in run reports as
//! `cache.hits` / `cache.misses`.

use crate::cost::{best_facility, try_best_facility_anchored, FacilityChoice};
use crate::problem::CcsProblem;
use crate::schedule::{GroupPlan, Schedule};
use crate::sharing::CostSharing;
use ccs_coalition::cache::CoalitionCache;
use ccs_coalition::engine::{run, EngineOptions, SwitchRule};
use ccs_coalition::game::HedonicGame;
use ccs_coalition::partition::Partition;
use std::collections::BTreeSet;
use std::sync::Arc;

/// Where the game dynamics start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InitialPartition {
    /// Every device alone (the natural "before cooperation" state).
    #[default]
    Singletons,
    /// Everyone in one coalition.
    GrandCoalition,
}

/// Options for [`ccsga`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CcsgaOptions {
    /// The switch rule (default: the paper's selfish-with-history).
    pub rule: SwitchRule,
    /// Initial coalition structure.
    pub initial: InitialPartition,
    /// Round cap forwarded to the engine (`0` = engine default).
    pub max_rounds: usize,
    /// Strict-improvement margin.
    pub epsilon: f64,
    /// Scale mode: cap each device's candidate joins to the coalitions of
    /// its nearest neighbors (via the device spatial grid) instead of
    /// scanning every coalition. `0` (the default) keeps the exact full
    /// scan; the paper-size outputs are bitwise unaffected. A positive cap
    /// (e.g. 8) makes each best-response `O(cap)` — the knob that keeps
    /// `n = 10k` runs sub-second.
    pub neighbor_cap: usize,
    /// Whether to run the final Nash-stability audit (an extra
    /// `O(n · coalitions)` pass). Default `true`; turn off at large `n`
    /// where the audit dwarfs the dynamics. When off,
    /// [`CcsgaOutcome::nash_stable`] reads `false` ("not verified").
    pub check_stability: bool,
    /// Whether the engine runs its activity-driven worklist (skip players
    /// no switch could have affected — see `ccs_coalition::engine`).
    /// Default `true`; the trajectory is bit-identical either way, so this
    /// knob exists for the equivalence tests and as an escape hatch.
    pub worklist: bool,
}

impl Default for CcsgaOptions {
    fn default() -> Self {
        CcsgaOptions {
            rule: SwitchRule::SelfishWithHistory,
            initial: InitialPartition::Singletons,
            max_rounds: 0,
            epsilon: 1e-9,
            neighbor_cap: 0,
            check_stability: true,
            worklist: true,
        }
    }
}

/// Outcome of a CCSGA run: the schedule plus game-dynamics diagnostics.
#[derive(Debug, Clone)]
pub struct CcsgaOutcome {
    /// The final schedule.
    pub schedule: Schedule,
    /// Full engine rounds executed.
    pub rounds: usize,
    /// Switch operations applied.
    pub switches: usize,
    /// Whether the dynamics reached a fixed point within the round cap.
    pub converged: bool,
    /// Whether the final partition is a pure Nash equilibrium. Always
    /// `false` when the audit was skipped via
    /// [`CcsgaOptions::check_stability`] — "not verified", not "unstable".
    pub nash_stable: bool,
}

/// The hedonic game induced by a CCS instance and a sharing scheme.
///
/// Caches `(facility, shares)` per coalition composition in a thread-safe
/// [`CoalitionCache`], so the engine's parallel candidate batches share the
/// memo and re-pricing survives across rounds.
struct CcsGame<'a> {
    problem: &'a CcsProblem,
    sharing: &'a dyn CostSharing,
    cache: CoalitionCache<CachedCoalition>,
}

struct CachedCoalition {
    facility: FacilityChoice,
    shares: Vec<ccs_wrsn::units::Cost>,
}

impl<'a> CcsGame<'a> {
    fn new(problem: &'a CcsProblem, sharing: &'a dyn CostSharing) -> Self {
        CcsGame {
            problem,
            sharing,
            cache: CoalitionCache::new(),
        }
    }

    fn evaluate(&self, coalition: &BTreeSet<usize>) -> Arc<CachedCoalition> {
        self.evaluate_hinted(coalition, None)
    }

    /// Evaluates a coalition, optionally knowing that `newcomer` is the
    /// member that was just added to an existing composition. On a cache
    /// miss, the cached base coalition's charger anchors the pruned scan
    /// (see [`price`](Self::price)); the cached result is bitwise
    /// independent of whether a hint was available.
    fn evaluate_hinted(
        &self,
        coalition: &BTreeSet<usize>,
        newcomer: Option<usize>,
    ) -> Arc<CachedCoalition> {
        let key: Vec<usize> = coalition.iter().copied().collect();
        self.cache
            .get_or_insert_by_key(&key, || self.price(&key, newcomer))
    }

    /// [`evaluate_hinted`](Self::evaluate_hinted) keyed by a sorted member
    /// slice: the engine's allocation-free probe path. A warm composition
    /// costs one sharded hash lookup and nothing else.
    fn evaluate_sorted(&self, members: &[usize], newcomer: Option<usize>) -> Arc<CachedCoalition> {
        self.cache
            .get_or_insert_by_key(members, || self.price(members, newcomer))
    }

    /// Prices a composition from scratch (the cache-miss path). On a miss,
    /// the cached base coalition's charger anchors the pruned scan: it is
    /// evaluated first, so the scan's threshold is an achieved cost from
    /// the start and most other chargers prune on their lower bound alone.
    /// The result is bitwise independent of whether a hint was available
    /// (see [`try_best_facility_anchored`]).
    fn price(&self, key: &[usize], newcomer: Option<usize>) -> CachedCoalition {
        let members: Vec<ccs_wrsn::entities::DeviceId> = key
            .iter()
            .map(|&i| ccs_wrsn::entities::DeviceId::new(i as u32))
            .collect();
        let anchor = newcomer.and_then(|p| {
            let base_key: Vec<usize> = key.iter().copied().filter(|&q| q != p).collect();
            if base_key.is_empty() {
                return None;
            }
            Some(self.cache.get_by_key(&base_key)?.facility.charger)
        });
        let facility = match anchor {
            Some(c) => try_best_facility_anchored(self.problem, &members, c)
                .expect("no charger's energy budget covers this group's demand"),
            None => best_facility(self.problem, &members),
        };
        let shares = self.sharing.shares(
            self.problem,
            facility.charger,
            &members,
            &facility.point,
            &facility.bill,
        );
        CachedCoalition { facility, shares }
    }
}

impl HedonicGame for CcsGame<'_> {
    fn num_players(&self) -> usize {
        self.problem.num_devices()
    }

    fn player_cost(&self, player: usize, coalition: &BTreeSet<usize>) -> f64 {
        assert!(coalition.contains(&player), "player must be a member");
        let cached = self.evaluate_hinted(coalition, Some(player));
        let idx = coalition
            .iter()
            .position(|&p| p == player)
            .expect("membership checked above");
        (cached.shares[idx] + cached.facility.moving[idx]).value()
    }

    /// Allocation-free probe path: on a warm composition this is one
    /// sharded hash lookup plus a binary search — no `BTreeSet`, no key
    /// `Vec`, no `DeviceId` buffer.
    fn player_cost_sorted(&self, player: usize, members: &[usize]) -> f64 {
        let cached = self.evaluate_sorted(members, Some(player));
        let idx = members
            .binary_search(&player)
            .expect("player must be a member");
        (cached.shares[idx] + cached.facility.moving[idx]).value()
    }

    fn coalition_feasible(&self, coalition: &BTreeSet<usize>) -> bool {
        if !self.problem.group_size_ok(coalition.len()) {
            return false;
        }
        let members: Vec<ccs_wrsn::entities::DeviceId> = coalition
            .iter()
            .map(|&i| ccs_wrsn::entities::DeviceId::new(i as u32))
            .collect();
        self.problem.feasible_group(&members)
    }

    /// Same admissibility rule as [`coalition_feasible`](HedonicGame::coalition_feasible)
    /// — size cap plus "some charger's budget covers the summed demand" —
    /// but summing straight off the index slice, with no `DeviceId` buffer.
    fn coalition_feasible_sorted(&self, members: &[usize]) -> bool {
        if !self.problem.group_size_ok(members.len()) {
            return false;
        }
        let demand: ccs_wrsn::units::Joules = members
            .iter()
            .map(|&i| {
                self.problem
                    .device(ccs_wrsn::entities::DeviceId::new(i as u32))
                    .demand()
            })
            .sum();
        self.problem
            .scenario()
            .chargers()
            .iter()
            .any(|c| c.can_deliver(demand))
    }

    /// Nearest devices first, from the precomputed device grid: rings are
    /// expanded until the ring bound proves the `limit` collected devices
    /// are the true nearest, then sorted by exact `(distance, id)`. Pure
    /// function of the instance — deterministic at any thread count.
    fn neighbor_order(&self, player: usize, limit: usize, out: &mut Vec<usize>) -> bool {
        let tables = self.problem.tables();
        let grid = tables.device_grid();
        if grid.len() <= 1 || limit == 0 {
            return false;
        }
        if tables.cached_neighbor_order(player as u32, limit as u32, out) {
            return true;
        }
        let pos = |id: u32| tables.device_position(ccs_wrsn::entities::DeviceId::new(id));
        let from = pos(player as u32);
        let by_distance_then_id =
            |a: &(f64, u32), b: &(f64, u32)| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1));
        let mut found: Vec<(f64, u32)> = Vec::new();
        let mut cursor = grid.rings_from(from);
        let mut ring = Vec::new();
        while let Some(lb) = cursor.next_ring(&mut ring) {
            if found.len() >= limit {
                found.sort_unstable_by(by_distance_then_id);
                if lb > found[limit - 1].0 {
                    break;
                }
            }
            for &id in &ring {
                if id as usize != player {
                    found.push((from.distance_value(&pos(id)), id));
                }
            }
            ring.clear();
        }
        found.sort_unstable_by(by_distance_then_id);
        found.truncate(limit);
        let start = out.len();
        out.extend(found.iter().map(|&(_, id)| id as usize));
        tables.store_neighbor_order(player as u32, limit as u32, &out[start..]);
        true
    }
}

/// Runs CCSGA and returns the schedule plus convergence diagnostics.
///
/// # Examples
///
/// ```
/// use ccs_core::prelude::*;
/// use ccs_wrsn::scenario::ScenarioGenerator;
///
/// let problem = CcsProblem::new(ScenarioGenerator::new(1).devices(8).chargers(3).generate());
/// let outcome = ccsga(&problem, &EqualShare, CcsgaOptions::default());
/// assert!(outcome.converged);
/// assert!(outcome.nash_stable, "no device can gain by deviating alone");
/// outcome.schedule.validate(&problem)?;
/// # Ok::<(), ccs_core::schedule::ScheduleError>(())
/// ```
pub fn ccsga(
    problem: &CcsProblem,
    sharing: &dyn CostSharing,
    options: CcsgaOptions,
) -> CcsgaOutcome {
    let _span = ccs_telemetry::span!("ccsga");
    let n = problem.num_devices();
    let game = CcsGame::new(problem, sharing);
    let initial = match options.initial {
        InitialPartition::Singletons => Partition::singletons(n),
        InitialPartition::GrandCoalition => {
            if problem.group_size_ok(n) {
                Partition::grand_coalition(n)
            } else {
                Partition::singletons(n)
            }
        }
    };
    let report = run(
        &game,
        initial,
        EngineOptions {
            rule: options.rule,
            max_rounds: options.max_rounds,
            epsilon: options.epsilon,
            shortlist_cap: options.neighbor_cap,
            check_stability: options.check_stability,
            worklist: options.worklist,
        },
    );

    ccs_telemetry::counter!("ccsga.coalition_cache_entries").add(game.cache.len() as u64);

    let mut plans: Vec<GroupPlan> = report
        .partition
        .coalitions()
        .map(|(_, members)| {
            let ids: Vec<ccs_wrsn::entities::DeviceId> = members
                .iter()
                .map(|&i| ccs_wrsn::entities::DeviceId::new(i as u32))
                .collect();
            // Every final coalition was priced during the dynamics — reuse
            // the memo instead of re-running the charger scan.
            let facility = game.evaluate(members).facility.clone();
            GroupPlan::from_facility(problem, ids, facility, sharing)
        })
        .collect();
    plans.sort_by_key(|g| g.members[0]);

    let schedule = Schedule::new(plans, "ccsga", sharing.name());
    debug_assert!(schedule.validate(problem).is_ok());
    CcsgaOutcome {
        schedule,
        rounds: report.rounds,
        switches: report.switches,
        converged: report.converged,
        nash_stable: report.nash_stable,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::noncoop::{noncooperation, solo_cost};
    use crate::problem::CostParams;
    use crate::sharing::{EqualShare, ProportionalShare};
    use ccs_wrsn::scenario::{ParamRange, Placement, ScenarioGenerator};
    use ccs_wrsn::units::Cost;

    fn problem(seed: u64, n: usize, m: usize) -> CcsProblem {
        CcsProblem::new(
            ScenarioGenerator::new(seed)
                .devices(n)
                .chargers(m)
                .generate(),
        )
    }

    #[test]
    fn converges_and_is_valid() {
        for seed in [1, 2, 3] {
            let p = problem(seed, 15, 4);
            let out = ccsga(&p, &EqualShare, CcsgaOptions::default());
            out.schedule.validate(&p).unwrap();
            assert!(out.converged, "seed {seed} did not converge");
            assert_eq!(out.schedule.algorithm(), "ccsga");
        }
    }

    #[test]
    fn reaches_pure_nash_equilibrium() {
        for seed in [1, 2, 3, 4, 5] {
            let p = problem(seed, 12, 4);
            let out = ccsga(&p, &EqualShare, CcsgaOptions::default());
            assert!(
                out.nash_stable,
                "seed {seed}: final partition is not Nash-stable"
            );
        }
    }

    #[test]
    fn beats_noncooperation_from_singletons() {
        // Starting from singletons, every switch strictly improves the
        // mover; with a Nash-stable end no device pays more than solo.
        for seed in [1, 2, 3, 4] {
            let p = problem(seed, 15, 4);
            let out = ccsga(&p, &EqualShare, CcsgaOptions::default());
            let ncp = noncooperation(&p, &EqualShare);
            assert!(
                out.schedule.total_cost() <= ncp.total_cost() + Cost::new(1e-6),
                "seed {seed}: ccsga {} vs ncp {}",
                out.schedule.total_cost(),
                ncp.total_cost()
            );
        }
    }

    #[test]
    fn nash_stability_implies_individual_rationality() {
        let p = problem(6, 12, 4);
        let out = ccsga(&p, &EqualShare, CcsgaOptions::default());
        assert!(out.nash_stable);
        for d in p.scenario().device_ids() {
            let cost = out.schedule.device_cost(d).unwrap();
            assert!(
                cost <= solo_cost(&p, d) + Cost::new(1e-6),
                "device {d} pays {cost} over solo"
            );
        }
    }

    #[test]
    fn high_fees_trigger_cooperation() {
        let scenario = ScenarioGenerator::new(4)
            .devices(10)
            .chargers(3)
            .field_side(80.0)
            .device_placement(Placement::Clustered {
                count: 2,
                sigma: 4.0,
            })
            .base_fee_range(ParamRange::fixed(50.0))
            .generate();
        let p = CcsProblem::new(scenario);
        let out = ccsga(&p, &EqualShare, CcsgaOptions::default());
        assert!(out.switches > 0, "high fees must cause switches");
        assert!(out.schedule.groups().len() < 10);
    }

    #[test]
    fn proportional_sharing_also_converges() {
        let p = problem(2, 12, 3);
        let out = ccsga(&p, &ProportionalShare, CcsgaOptions::default());
        out.schedule.validate(&p).unwrap();
        assert!(out.converged);
        assert_eq!(out.schedule.sharing(), "proportional");
    }

    #[test]
    fn grand_coalition_start_converges() {
        let p = problem(3, 10, 3);
        let out = ccsga(
            &p,
            &EqualShare,
            CcsgaOptions {
                initial: InitialPartition::GrandCoalition,
                ..Default::default()
            },
        );
        out.schedule.validate(&p).unwrap();
        assert!(out.converged);
    }

    #[test]
    fn respects_group_size_cap() {
        let scenario = ScenarioGenerator::new(8).devices(12).chargers(3).generate();
        let p = CcsProblem::with_params(
            scenario,
            CostParams {
                max_group_size: Some(2),
                ..Default::default()
            },
        );
        let out = ccsga(&p, &EqualShare, CcsgaOptions::default());
        out.schedule.validate(&p).unwrap();
        assert!(out.schedule.groups().iter().all(|g| g.members.len() <= 2));
    }

    #[test]
    fn skipping_the_stability_audit_keeps_the_schedule_identical() {
        let p = problem(1, 15, 4);
        let audited = ccsga(&p, &EqualShare, CcsgaOptions::default());
        let skipped = ccsga(
            &p,
            &EqualShare,
            CcsgaOptions {
                check_stability: false,
                ..Default::default()
            },
        );
        assert_eq!(
            serde_json::to_string(&skipped.schedule).unwrap(),
            serde_json::to_string(&audited.schedule).unwrap(),
            "the audit must not influence the dynamics"
        );
        assert!(audited.nash_stable);
        assert!(!skipped.nash_stable, "skipped audit reads as unverified");
    }

    #[test]
    fn neighbor_cap_scale_mode_stays_valid_and_rational() {
        // The shortlist is an approximation: it must still produce a valid,
        // individually-rational schedule that beats noncooperation.
        for seed in [1, 2, 3] {
            let p = problem(seed, 20, 5);
            let out = ccsga(
                &p,
                &EqualShare,
                CcsgaOptions {
                    neighbor_cap: 4,
                    check_stability: false,
                    ..Default::default()
                },
            );
            out.schedule.validate(&p).unwrap();
            assert!(out.converged, "seed {seed} did not converge");
            let ncp = noncooperation(&p, &EqualShare);
            assert!(
                out.schedule.total_cost() <= ncp.total_cost() + Cost::new(1e-6),
                "seed {seed}: capped ccsga {} vs ncp {}",
                out.schedule.total_cost(),
                ncp.total_cost()
            );
        }
    }

    #[test]
    fn generous_neighbor_cap_matches_the_exact_scan() {
        // A cap covering every other device shortlists every coalition, so
        // the trajectory — and the schedule bytes — match the full scan.
        let p = problem(2, 12, 4);
        let exact = ccsga(&p, &EqualShare, CcsgaOptions::default());
        let capped = ccsga(
            &p,
            &EqualShare,
            CcsgaOptions {
                neighbor_cap: 12,
                ..Default::default()
            },
        );
        assert_eq!(
            serde_json::to_string(&capped.schedule).unwrap(),
            serde_json::to_string(&exact.schedule).unwrap()
        );
        assert_eq!(capped.switches, exact.switches);
    }

    #[test]
    fn utilitarian_rule_variant_runs() {
        let p = problem(5, 10, 3);
        let out = ccsga(
            &p,
            &EqualShare,
            CcsgaOptions {
                rule: SwitchRule::Utilitarian,
                ..Default::default()
            },
        );
        out.schedule.validate(&p).unwrap();
        assert!(out.converged);
        let ncp = noncooperation(&p, &EqualShare);
        assert!(out.schedule.total_cost() <= ncp.total_cost() + Cost::new(1e-6));
    }
}
