//! The CCS scheduling algorithms.
//!
//! | Module | Algorithm | Role in the paper |
//! |---|---|---|
//! | [`noncoop`] | NCP | the noncooperation baseline (everyone hires alone) |
//! | [`mod@cluster`] | CLU | spatial k-means clustering baseline (geometry-only) |
//! | [`mod@ccsa`] | CCSA | greedy + submodular-minimization approximation |
//! | [`mod@ccsga`] | CCSGA | coalition-formation game for large instances |
//! | [`mod@optimal`] | OPT | exact set-partition DP (small instances) |
//!
//! All algorithms take the same [`CcsProblem`](crate::problem::CcsProblem)
//! and [`CostSharing`](crate::sharing::CostSharing) scheme and return a
//! [`Schedule`](crate::schedule::Schedule), so their total costs are
//! directly comparable.

pub mod ccsa;
pub mod ccsga;
pub mod cluster;
pub mod noncoop;
pub mod optimal;

pub use ccsa::{ccsa, CcsaOptions, InnerMinimizer};
pub use ccsga::{ccsga, CcsgaOptions, CcsgaOutcome, InitialPartition};
pub use cluster::{clustering, ClusterOptions};
pub use noncoop::noncooperation;
pub use optimal::{optimal, OptimalError, OptimalOptions};
