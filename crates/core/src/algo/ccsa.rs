//! CCSA — the paper's approximation algorithm: greedy facility commitment
//! driven by submodular minimum-density search.
//!
//! One *facility* is a `(charger, gathering point)` pair; candidate points
//! are the unscheduled device positions, the charger depots and a coarse
//! field grid. For a fixed facility the group cost over a member set `S`
//! is the separable submodular function
//!
//! ```text
//! f(S) = [b_j + τ_j·d(q_j,p)]·1[S≠∅] + Σ_{i∈S} (π_j·w_i + κ_i·d(p_i,p)) + η_j·g(|S|)
//! ```
//!
//! Each greedy round finds, over all facilities, the nonempty member set
//! with the **minimum per-member cost** `f(S)/|S|` — a submodular
//! minimum-ratio problem — commits the winner, removes its members, and
//! repeats. This is the classical greedy for submodular set cover, giving
//! the `H_n` approximation bound the paper's "approximation algorithm"
//! framing refers to.
//!
//! Three inner minimizers implement the density search (the `abl_sfm`
//! ablation): an exact `O(n log n)` prefix scan exploiting separability
//! (production default), exact Dinkelbach + Fujishige–Wolfe min-norm-point
//! SFM (the paper's generic machinery), and a cheap greedy heuristic.
//!
//! After commitment each group's gathering point is re-optimized with the
//! problem's strategy (Weiszfeld by default), and an optional
//! individual-rationality repair ejects any member that would pay more than
//! its solo cost — the cooperation guarantee the paper's cost-sharing
//! schemes are designed to sustain.

use crate::algo::noncoop::solo_cost;
use crate::cost::{
    best_facility, evaluate_facility, join_upper_bound, leave_upper_bound,
    try_best_facility_with_upper, FacilityChoice,
};
use crate::gathering::gathering_point;
use crate::grid::UniformGrid;
use crate::problem::CcsProblem;
use crate::schedule::{GroupPlan, Schedule};
use crate::sharing::CostSharing;
use ccs_submodular::density::{min_density_mnp, min_density_separable};
use ccs_submodular::minimize::SeparableFn;
use ccs_submodular::mnp::MnpOptions;
use ccs_submodular::set_fn::{CardinalityCurve, SetFunction};
use ccs_wrsn::entities::{ChargerId, DeviceId};
use ccs_wrsn::geometry::Point;
use ccs_wrsn::units::Cost;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Which engine solves the per-facility minimum-density subproblem.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InnerMinimizer {
    /// Exact `O(n log n)` prefix scan over sorted weights (default).
    #[default]
    PrefixScan,
    /// Exact Dinkelbach ratio search with the separable SFM oracle.
    DinkelbachSeparable,
    /// Exact Dinkelbach ratio search with Fujishige–Wolfe min-norm-point
    /// SFM (the fully general machinery; slowest).
    DinkelbachMnp,
    /// Greedy accretion heuristic (cheapest-first; may be suboptimal).
    GreedyAccretion,
}

/// Options for [`ccsa`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CcsaOptions {
    /// Inner density minimizer.
    pub minimizer: InnerMinimizer,
    /// Side of the coarse candidate grid added to device/charger positions
    /// (`0` disables grid candidates).
    pub candidate_grid: usize,
    /// Re-optimize each committed group's gathering point with the
    /// problem's strategy.
    pub refine_gathering: bool,
    /// Eject members that pay more than their solo cost (individual
    /// rationality repair).
    pub ir_repair: bool,
    /// After the greedy commitments, run a bounded single-device
    /// reassignment descent on total group cost (strictly improving moves
    /// only).
    pub local_improvement: bool,
}

impl Default for CcsaOptions {
    fn default() -> Self {
        CcsaOptions {
            minimizer: InnerMinimizer::PrefixScan,
            candidate_grid: 4,
            refine_gathering: true,
            ir_repair: true,
            local_improvement: true,
        }
    }
}

/// Runs CCSA and returns its schedule.
///
/// # Examples
///
/// ```
/// use ccs_core::prelude::*;
/// use ccs_wrsn::scenario::ScenarioGenerator;
///
/// let problem = CcsProblem::new(ScenarioGenerator::new(1).devices(8).chargers(3).generate());
/// let schedule = ccsa(&problem, &EqualShare, CcsaOptions::default());
/// schedule.validate(&problem)?;
/// assert!(schedule.total_cost() <= noncooperation(&problem, &EqualShare).total_cost());
/// # Ok::<(), ccs_core::schedule::ScheduleError>(())
/// ```
pub fn ccsa(problem: &CcsProblem, sharing: &dyn CostSharing, options: CcsaOptions) -> Schedule {
    let _span = ccs_telemetry::span!("ccsa");
    let n = problem.num_devices();
    let mut remaining: Vec<DeviceId> = problem.scenario().device_ids().collect();
    let mut committed: Vec<(ChargerId, Point, Vec<DeviceId>)> = Vec::new();

    {
        let _greedy = ccs_telemetry::span!("greedy");
        let rounds = ccs_telemetry::counter!("ccsa.rounds");
        let mut sweep = Sweep::new(problem, options);
        while !remaining.is_empty() {
            rounds.incr();
            let (charger, point, members) = sweep.round(&remaining);
            debug_assert!(!members.is_empty());
            remaining.retain(|d| !members.contains(d));
            committed.push((charger, point, members));
        }
    }

    let mut groups: Vec<(ChargerId, Point, Vec<DeviceId>)> = {
        let _refine = ccs_telemetry::span!("refine");
        committed
            .into_iter()
            .map(|(c, p, members)| refine(problem, c, p, members, options))
            .collect()
    };

    if options.local_improvement {
        let _improve = ccs_telemetry::span!("local_improvement");
        local_improvement(problem, &mut groups);
    }

    if options.ir_repair {
        let _repair = ccs_telemetry::span!("ir_repair");
        repair_individual_rationality(problem, sharing, &mut groups);
    }

    let mut plans: Vec<GroupPlan> = groups
        .into_iter()
        .map(|(c, p, mut members)| {
            members.sort();
            let facility = evaluate_facility(problem, c, &members, p);
            GroupPlan::from_facility(problem, members, facility, sharing)
        })
        .collect();
    plans.sort_by_key(|g| g.members[0]);

    let schedule = Schedule::new(plans, "ccsa", sharing.name());
    debug_assert!(schedule.validate(problem).is_ok(), "n = {n}");
    schedule
}

/// How many walked elements a cached density scan may record; scans that
/// walk more are re-priced next round instead of cached. This bounds the
/// memo's footprint without losing much: a long walk almost always contains
/// the committed winner and would be invalidated immediately anyway.
const CACHE_TAKEN_LIMIT: usize = 64;

/// One facility's memoized minimum-density scan (PrefixScan rounds only).
struct CachedDensity {
    /// Group-size cap the scan ran under.
    cap: usize,
    /// `None`: not even a single device fit the charger's budget — a fact
    /// about per-device demands alone, valid for the rest of the sweep.
    /// `Some((density, best_k, taken))`: the scan's full walk in push
    /// order; `taken[..best_k]` is the minimizer.
    result: Option<(f64, usize, Vec<DeviceId>)>,
}

/// Persistent state of the greedy facility sweep: the fixed facility
/// universe plus per-facility cached density scans, so each round re-prices
/// only the facilities the previous commitment could have changed.
///
/// ## The incremental sweep
///
/// A facility's density scan reads per-device weights and demands that
/// never change across rounds; the only round-to-round input is *which*
/// devices remain. The prefix scan walks devices in sorted-weight order and
/// pushes at most `cap` of them (`taken`); devices it skipped for budget
/// overflow, or never reached, do not influence the outcome. Removing such
/// a device from the ground set therefore replays the identical walk —
/// bit-identical accumulation, identical minimizer. So a cached result
/// stays valid as long as (a) no device in its full `taken` walk has been
/// committed and (b) the size cap still admits the walk (`cap` unchanged,
/// or the walk shorter than the new cap — the cap only shrinks as devices
/// commit). Valid caches are counted on `ccsa.facilities_skipped`;
/// facilities whose anchoring device committed leave the universe exactly
/// as the per-round candidate rebuild used to drop them.
///
/// Every `(charger, gathering point)` facility that does need pricing runs
/// in one `ccs-par` batch; the winner is then picked by a serial reduce in
/// facility order under the exact `(density, facility index)` total order.
/// The alive facilities enumerate in the same order the per-round rebuild
/// produced (remaining devices ascending, then depots, then grid), so the
/// committed group is bit-identical to the non-incremental sweep at any
/// thread count.
///
/// ## Geometric pruning
///
/// Before a facility pays for its `O(|R|)` weight vector and density scan,
/// a per-facility **density lower bound** is compared against the best
/// density seen so far (a shared atomic, monotonically shrinking, seeded
/// each round with the best still-valid cached density):
///
/// ```text
/// density(S) >= fee_jp / cap + η_j · min_k g(k)/k
///             + π_j · w_min + κ_min · d(p, nearest remaining device)
/// ```
///
/// for every nonempty `S ⊆ R` with `|S| <= cap` (all cost terms are
/// nonnegative). The nearest-device distances come from a per-round
/// [`UniformGrid`] over the remaining positions. A pruned facility's true
/// density strictly exceeds some density achievable this round (a computed
/// one, or a valid cache's), so it can be neither the exact argmin nor an
/// exact tie — the committed group is identical to the unpruned scan's
/// regardless of thread interleaving (which only affects *how many*
/// facilities get pruned, a telemetry-visible, result-invisible quantity).
struct Sweep<'a> {
    problem: &'a CcsProblem,
    options: CcsaOptions,
    /// Candidate gathering points, fixed across rounds: every device
    /// position (anchored to its device), then charger depots and the
    /// coarse field grid (unanchored).
    candidates: Vec<Point>,
    /// `Some(d)` when candidate `i` is device `d`'s position: the point
    /// dies with its device, exactly as the per-round rebuild dropped it.
    anchors: Vec<Option<DeviceId>>,
    /// Facility universe, charger-major / candidate-minor — the per-round
    /// rebuild's iteration order.
    facilities: Vec<(ChargerId, u32)>,
    /// Per-facility cached scans from earlier rounds.
    cache: Vec<Option<CachedDensity>>,
    /// Per-device energy demand, indexed by device id.
    demand_of: Vec<f64>,
}

/// What one facility contributed to a round's parallel pricing batch.
enum RoundEval {
    /// Dead facility, valid cache, or pruned — nothing new to record.
    Skipped,
    /// Computed: not even a single device fits the charger's budget.
    Infeasible,
    /// Computed `(density, best_k, taken)` with local indices into the
    /// round's `remaining` slice.
    Priced(f64, usize, Vec<usize>),
}

impl<'a> Sweep<'a> {
    fn new(problem: &'a CcsProblem, options: CcsaOptions) -> Self {
        let mut candidates: Vec<Point> = Vec::new();
        let mut anchors: Vec<Option<DeviceId>> = Vec::new();
        for d in problem.scenario().device_ids() {
            candidates.push(problem.device(d).position());
            anchors.push(Some(d));
        }
        for c in problem.scenario().chargers() {
            candidates.push(c.position());
            anchors.push(None);
        }
        if options.candidate_grid > 0 {
            for p in problem.scenario().field().grid(options.candidate_grid) {
                candidates.push(p);
                anchors.push(None);
            }
        }
        let num_candidates = candidates.len() as u32;
        let facilities: Vec<(ChargerId, u32)> = problem
            .scenario()
            .charger_ids()
            .flat_map(|charger| (0..num_candidates).map(move |i| (charger, i)))
            .collect();
        let cache = facilities.iter().map(|_| None).collect();
        let demand_of: Vec<f64> = problem
            .scenario()
            .device_ids()
            .map(|d| problem.device(d).demand().value())
            .collect();
        Sweep {
            problem,
            options,
            candidates,
            anchors,
            facilities,
            cache,
            demand_of,
        }
    }

    /// The best `(facility, member set)` of one greedy round: minimum
    /// per-member group cost over all alive facilities (see the type docs
    /// for the caching and pruning machinery).
    fn round(&mut self, remaining: &[DeviceId]) -> (ChargerId, Point, Vec<DeviceId>) {
        let problem = self.problem;
        let options = self.options;
        let tables = problem.tables();

        let mut in_remaining = vec![false; problem.num_devices()];
        for &d in remaining {
            in_remaining[d.index()] = true;
        }
        let cand_alive: Vec<bool> = self
            .anchors
            .iter()
            .map(|a| a.is_none_or(|d| in_remaining[d.index()]))
            .collect();
        let cap = problem
            .params()
            .max_group_size
            .unwrap_or(remaining.len())
            .min(remaining.len())
            .max(1);

        // Drop caches the commitments so far have touched; keep the rest.
        let facilities_skipped = ccs_telemetry::counter!("ccsa.facilities_skipped");
        let mut reused = 0u64;
        for (fi, &(_, cand)) in self.facilities.iter().enumerate() {
            if !cand_alive[cand as usize] {
                self.cache[fi] = None;
                continue;
            }
            let Some(entry) = &self.cache[fi] else {
                continue;
            };
            let valid = match &entry.result {
                None => true,
                Some((_, _, taken)) => {
                    (entry.cap == cap || taken.len() <= cap)
                        && taken.iter().all(|d| in_remaining[d.index()])
                }
            };
            if valid {
                reused += 1;
            } else {
                self.cache[fi] = None;
            }
        }
        facilities_skipped.add(reused);

        // Per-round floors for the density lower bound.
        let demands: Vec<f64> = remaining
            .iter()
            .map(|&d| self.demand_of[d.index()])
            .collect();
        let w_min = demands.iter().copied().fold(f64::INFINITY, f64::min);
        let kappa_min = remaining
            .iter()
            .map(|&d| tables.move_rate(d))
            .fold(f64::INFINITY, f64::min);
        // min_k g(k)/k over admissible sizes — no concavity assumption needed.
        let min_curve_ratio = (1..=cap)
            .map(|k| tables.curve_value(k) / k as f64)
            .fold(f64::INFINITY, f64::min);
        let remaining_pos: Vec<Point> = remaining
            .iter()
            .map(|&d| tables.device_position(d))
            .collect();
        let remaining_grid = UniformGrid::build(&remaining_pos);
        // Nearest remaining device per alive candidate point, shared by all
        // chargers (dead entries are never read).
        let point_dmin: Vec<f64> = self
            .candidates
            .iter()
            .zip(&cand_alive)
            .map(|(p, &alive)| {
                if alive {
                    remaining_grid.nearest_distance(*p, &remaining_pos)
                } else {
                    0.0
                }
            })
            .collect();
        // The congestion table depends only on the charger's occupancy rate
        // and the instance curve — one table per charger serves its whole
        // facility row.
        let curve = &problem.params().congestion_curve;
        let charger_parts: Vec<Vec<f64>> = problem
            .scenario()
            .chargers()
            .iter()
            .map(|c| congestion_parts(c.occupancy_rate().value(), curve, cap))
            .collect();

        // Best density seen so far, as f64 bits (densities are >= 0, so the
        // bit pattern orders like the value). Seeded with the best valid
        // cache so pruning starts at last round's frontier; monotone min,
        // and lagging reads only weaken pruning, never the winner.
        let mut seed = f64::INFINITY;
        for (fi, &(_, cand)) in self.facilities.iter().enumerate() {
            if !cand_alive[cand as usize] {
                continue;
            }
            if let Some(CachedDensity {
                result: Some((density, _, _)),
                ..
            }) = &self.cache[fi]
            {
                seed = seed.min(*density);
            }
        }
        let best_seen = AtomicU64::new(seed.to_bits());

        let facility_evals = ccs_telemetry::counter!("ccsa.facility_evals");
        let facility_pruned = ccs_telemetry::counter!("ccsa.facility_pruned");
        let cache = &self.cache;
        let candidates = &self.candidates;
        let priced: Vec<RoundEval> = ccs_par::par_map(&self.facilities, |fi, &(charger, cand)| {
            if !cand_alive[cand as usize] || cache[fi].is_some() {
                return RoundEval::Skipped;
            }
            facility_evals.incr();
            let point = candidates[cand as usize];
            let c = problem.charger(charger);
            let fee = c.base_fee() + c.travel_cost_rate() * c.position().distance(&point);
            let bound = fee.value() / cap as f64
                + c.occupancy_rate().value() * min_curve_ratio
                + c.energy_price().value() * w_min
                + kappa_min * point_dmin[cand as usize];
            if bound > f64::from_bits(best_seen.load(Ordering::Relaxed)) {
                facility_pruned.incr();
                return RoundEval::Skipped;
            }
            let weights: Vec<f64> = remaining
                .iter()
                .map(|&d| {
                    let dev = problem.device(d);
                    (tables.energy(charger, d)
                        + dev.move_cost_rate() * dev.position().distance(&point))
                    .value()
                })
                .collect();
            let budget = c.energy_budget().map(|b| b.value());
            let f = SeparableFn::new(
                weights,
                fee.value(),
                curve.clone(),
                c.occupancy_rate().value(),
            );
            match min_density(
                &f,
                &demands,
                budget,
                &charger_parts[charger.index()],
                cap,
                options,
            ) {
                Some((density, best_k, taken)) => {
                    let _ = best_seen.fetch_min(density.to_bits(), Ordering::Relaxed);
                    RoundEval::Priced(density, best_k, taken)
                }
                None => RoundEval::Infeasible,
            }
        });

        // Serial reduce in facility order: fresh results and valid caches
        // compete under the exact (density, facility index) total order.
        let mut best: Option<(f64, usize)> = None;
        for (fi, eval) in priced.iter().enumerate() {
            let (_, cand) = self.facilities[fi];
            if !cand_alive[cand as usize] {
                continue;
            }
            let density = match (eval, &self.cache[fi]) {
                (RoundEval::Priced(density, _, _), _) => *density,
                (
                    RoundEval::Skipped,
                    Some(CachedDensity {
                        result: Some((density, _, _)),
                        ..
                    }),
                ) => *density,
                _ => continue,
            };
            let better = match &best {
                Some((b, _)) => density.total_cmp(b) == std::cmp::Ordering::Less,
                None => true,
            };
            if better {
                best = Some((density, fi));
            }
        }
        let (_, win) = best.expect("some facility always admits a group");
        let (charger, cand) = self.facilities[win];
        let point = self.candidates[cand as usize];
        let members: Vec<DeviceId> = match (&priced[win], &self.cache[win]) {
            (RoundEval::Priced(_, best_k, taken), _) => {
                taken[..*best_k].iter().map(|&i| remaining[i]).collect()
            }
            (
                _,
                Some(CachedDensity {
                    result: Some((_, best_k, taken)),
                    ..
                }),
            ) => taken[..*best_k].to_vec(),
            _ => unreachable!("winner must come from a fresh scan or a valid cache"),
        };

        // Record this round's fresh scans for later rounds. Only PrefixScan
        // results replay bit-identically (the validity argument is about
        // the prefix walk), so other minimizers re-price every round.
        if options.minimizer == InnerMinimizer::PrefixScan {
            for (fi, eval) in priced.into_iter().enumerate() {
                match eval {
                    RoundEval::Skipped => {}
                    RoundEval::Infeasible => {
                        self.cache[fi] = Some(CachedDensity { cap, result: None });
                    }
                    RoundEval::Priced(density, best_k, taken) => {
                        if taken.len() <= CACHE_TAKEN_LIMIT {
                            let taken: Vec<DeviceId> =
                                taken.iter().map(|&i| remaining[i]).collect();
                            self.cache[fi] = Some(CachedDensity {
                                cap,
                                result: Some((density, best_k, taken)),
                            });
                        }
                    }
                }
            }
        }

        (charger, point, members)
    }
}

/// Minimum-density member set under the group-size cap.
/// Returns `(density, best_k, taken)` where `taken[..best_k]` is the
/// minimizer in local indices and `taken` is the scan's full walk (the
/// cache-validity witness; for the Dinkelbach minimizers it is just the
/// minimizer itself, which is never cached). `None` only if nothing is
/// admissible (cannot happen: singletons are always admissible).
fn min_density(
    f: &SeparableFn,
    demands: &[f64],
    budget: Option<f64>,
    curve_parts: &[f64],
    cap: usize,
    options: CcsaOptions,
) -> Option<(f64, usize, Vec<usize>)> {
    if f.ground_size() == 0 {
        return None;
    }
    match options.minimizer {
        InnerMinimizer::PrefixScan => prefix_scan_density(f, demands, budget, curve_parts, cap),
        InnerMinimizer::GreedyAccretion => {
            greedy_accretion_density(f, demands, budget, curve_parts, cap)
        }
        InnerMinimizer::DinkelbachSeparable | InnerMinimizer::DinkelbachMnp => {
            let result = if options.minimizer == InnerMinimizer::DinkelbachSeparable {
                min_density_separable(f)
            } else {
                min_density_mnp(f, MnpOptions::default())
            }
            .expect("separable functions are normalized and nonempty here");
            let picked = result.minimizer.to_vec();
            let demand: f64 = picked.iter().map(|&i| demands[i]).sum();
            if picked.len() <= cap && budget.is_none_or(|b| demand <= b) {
                Some((result.density, picked.len(), picked))
            } else {
                // The unconstrained optimum violates the cap or the
                // charger's energy budget; fall back to the constrained
                // scan (a sorted-prefix truncation, see below).
                prefix_scan_density(f, demands, budget, curve_parts, cap)
            }
        }
    }
}

/// Capped density minimization for separable functions: for each
/// cardinality `k` the best size-`k` set takes the `k` smallest weights,
/// so scanning sorted prefixes is exhaustive (exact) for the size cap.
/// An energy budget is honored by skipping members that would overflow it —
/// a greedy truncation that is exact without a budget and a documented
/// heuristic with one (the budgeted variant is a knapsack).
///
/// # Early exit
///
/// When the congestion table is non-decreasing (every curve this crate
/// ships; checked, not assumed), the walk stops at the first element whose
/// weight reaches the best density `b` found so far: weights ascend, so
/// every later prefix's density is a `k`-weighted average of a value
/// `≥ b − 1e-15` (the running invariant under the strict-improvement rule
/// below) and a weight `≥ b`, plus a non-negative congestion increment —
/// never enough to improve `best` again. Inductively the invariant is
/// preserved, so the truncated walk returns the exact same `(density, k)`
/// as the full one. Budget-skipped elements don't disturb the argument:
/// they contribute nothing to the prefix, and the element that triggers
/// the stop needs only its weight, not budget admission.
///
/// The exit typically fires within a few dozen elements, so the sort is
/// done lazily: select-then-sort a small front, growing it only if the
/// walk actually gets that far.
///
/// Returns the walk up to the stop alongside the best prefix length (see
/// [`min_density`]); `None` only if not even a single member fits the
/// budget. The truncation is invisible to the sweep cache's replay
/// argument: dropping a device outside `taken` never changes which
/// elements the walk admits, and the stop re-fires at the next surviving
/// weight, which is at least as large.
fn prefix_scan_density(
    f: &SeparableFn,
    demands: &[f64],
    budget: Option<f64>,
    curve_parts: &[f64],
    cap: usize,
) -> Option<(f64, usize, Vec<usize>)> {
    let weights = f.weights();
    let by_weight = |a: &usize, b: &usize| weights[*a].total_cmp(&weights[*b]).then(a.cmp(b));
    // A decreasing table (no shipped curve has one) would break the
    // early-exit induction; fall back to the exhaustive walk.
    let early_exit = curve_parts.windows(2).all(|w| w[1] >= w[0]);
    let mut order: Vec<usize> = (0..f.ground_size()).collect();
    // `order[..sorted_to]` holds the `sorted_to` globally smallest
    // elements in ascending order; the rest is an unordered remainder.
    let mut sorted_to = 0;
    let mut best: Option<(f64, usize)> = None;
    let mut acc = 0.0;
    let mut demand = 0.0;
    let mut taken: Vec<usize> = Vec::new();
    let mut i = 0;
    while i < order.len() {
        if i == sorted_to {
            let front = if sorted_to == 0 { 64 } else { sorted_to * 3 };
            let upto = (sorted_to + front).min(order.len());
            if upto < order.len() {
                order[sorted_to..].select_nth_unstable_by(upto - sorted_to - 1, by_weight);
            }
            order[sorted_to..upto].sort_unstable_by(by_weight);
            sorted_to = upto;
        }
        let e = order[i];
        i += 1;
        if let (true, Some((b, _))) = (early_exit, best) {
            if weights[e] >= b {
                break;
            }
        }
        if taken.len() == cap {
            break;
        }
        if let Some(b) = budget {
            if demand + demands[e] > b {
                continue; // would overflow this charger's budget
            }
        }
        taken.push(e);
        acc += weights[e];
        demand += demands[e];
        let k = taken.len();
        let density = (f.fee() + acc + curve_parts[k]) / k as f64;
        let better = match best {
            Some((b, _)) => density < b - 1e-15,
            None => true,
        };
        if better {
            best = Some((density, k));
        }
    }
    best.map(|(density, k)| (density, k, taken))
}

/// Greedy heuristic: start from the cheapest element, keep adding the next
/// cheapest (budget permitting) while the density improves.
fn greedy_accretion_density(
    f: &SeparableFn,
    demands: &[f64],
    budget: Option<f64>,
    curve_parts: &[f64],
    cap: usize,
) -> Option<(f64, usize, Vec<usize>)> {
    let mut order: Vec<usize> = (0..f.ground_size()).collect();
    order.sort_by(|&a, &b| f.weights()[a].total_cmp(&f.weights()[b]).then(a.cmp(&b)));
    order.retain(|&i| budget.is_none_or(|b| demands[i] <= b));
    let first = *order.first()?;
    let mut taken = vec![first];
    let mut acc = f.weights()[first];
    let mut demand = demands[first];
    let mut density = f.fee() + acc + curve_parts[1];
    for &i in order.iter().skip(1) {
        if taken.len() == cap {
            break;
        }
        if let Some(b) = budget {
            if demand + demands[i] > b {
                continue;
            }
        }
        let k = taken.len();
        let candidate = (f.fee() + acc + f.weights()[i] + curve_parts[k + 1]) / (k + 1) as f64;
        if candidate >= density {
            break;
        }
        taken.push(i);
        acc += f.weights()[i];
        demand += demands[i];
        density = candidate;
    }
    let k = taken.len();
    Some((density, k, taken))
}

/// The congestion part of the bill as a function of cardinality,
/// `scale · g(k)` tabulated for `k ∈ 0..=cap` in `O(cap)` with **no oracle
/// evaluations**.
///
/// The table depends only on the charger's occupancy `scale` and the
/// instance's curve — not on the candidate point or the remaining devices —
/// so each sweep round computes it once per charger and shares it across
/// that charger's whole facility row (and across rounds' cached scans,
/// whose replayed densities must match bitwise).
fn congestion_parts(scale: f64, curve: &CardinalityCurve, cap: usize) -> Vec<f64> {
    let mut parts = Vec::with_capacity(cap + 1);
    parts.push(0.0);
    for k in 1..=cap {
        parts.push(scale * curve.eval(k));
    }
    parts
}

/// Re-optimizes a committed group's gathering point.
fn refine(
    problem: &CcsProblem,
    charger: ChargerId,
    point: Point,
    members: Vec<DeviceId>,
    options: CcsaOptions,
) -> (ChargerId, Point, Vec<DeviceId>) {
    if !options.refine_gathering {
        return (charger, point, members);
    }
    let refined = gathering_point(problem, charger, &members, problem.params().gathering);
    let old = evaluate_facility(problem, charger, &members, point).group_cost();
    let new = evaluate_facility(problem, charger, &members, refined).group_cost();
    if new < old {
        (charger, refined, members)
    } else {
        (charger, point, members)
    }
}

/// Bounded best-improvement descent: repeatedly move a single device to
/// the group (or fresh singleton) that most reduces the sum of group costs,
/// re-picking each touched group's best facility. Each applied move
/// strictly decreases a bounded-below total, and the loop is additionally
/// capped, so it terminates.
///
/// Facility pricing dominates the runtime, so two kernel fast paths feed
/// the memo: each scan snapshots every group's current facility evaluation
/// once, and each candidate "member leaves src" / "member joins dst" set is
/// priced through [`try_best_facility_with_upper`] seeded with the
/// [`DeltaEval`]-style bound at the snapshot facility
/// ([`leave_upper_bound`] / [`join_upper_bound`]) — pruning most chargers
/// before any Weiszfeld solve while returning bitwise the unseeded scan's
/// choice.
fn local_improvement(problem: &CcsProblem, groups: &mut Vec<(ChargerId, Point, Vec<DeviceId>)>) {
    const MAX_MOVES: usize = 1_000;
    let eps = 1e-9;
    // Facility pricing is by far the hot path here, and the same member
    // sets are re-priced on every scan; memoize by sorted member ids.
    let mut memo: HashMap<Vec<DeviceId>, FacilityChoice> = HashMap::new();
    let priced = |memo: &mut HashMap<Vec<DeviceId>, FacilityChoice>,
                  sorted: &[DeviceId],
                  ub: Option<Cost>|
     -> FacilityChoice {
        if let Some(hit) = memo.get(sorted) {
            return hit.clone();
        }
        let f = match ub {
            Some(ub) => try_best_facility_with_upper(problem, sorted, ub)
                .expect("no charger's energy budget covers this group's demand"),
            None => best_facility(problem, sorted),
        };
        memo.insert(sorted.to_vec(), f.clone());
        f
    };
    let mut cost_of: Vec<f64> = groups
        .iter()
        .map(|(c, p, members)| {
            let mut sorted = members.clone();
            sorted.sort();
            evaluate_facility(problem, *c, &sorted, *p)
                .group_cost()
                .value()
        })
        .collect();

    for _ in 0..MAX_MOVES {
        // Snapshot each group's current facility evaluation (sorted member
        // list + choice); the per-candidate upper bounds below are deltas
        // off these.
        let snaps: Vec<Option<(Vec<DeviceId>, FacilityChoice)>> = groups
            .iter()
            .map(|(c, p, members)| {
                if members.is_empty() {
                    return None;
                }
                let mut sorted = members.clone();
                sorted.sort();
                let choice = evaluate_facility(problem, *c, &sorted, *p);
                Some((sorted, choice))
            })
            .collect();
        let mut best: Option<(usize, usize, Option<usize>, f64)> = None; // (src, local, dst, gain)
        for (src, (_, _, members)) in groups.iter().enumerate() {
            if members.is_empty() {
                continue;
            }
            for (local, &d) in members.iter().enumerate() {
                // Cost of the source group without d.
                let mut residual: Vec<DeviceId> =
                    members.iter().copied().filter(|&x| x != d).collect();
                residual.sort();
                let residual_cost = if residual.is_empty() {
                    0.0
                } else {
                    let ub = snaps[src]
                        .as_ref()
                        .and_then(|(s, choice)| leave_upper_bound(problem, s, choice, d));
                    priced(&mut memo, &residual, ub).group_cost().value()
                };
                // Destination: every other group, or a fresh singleton.
                for dst in 0..=groups.len() {
                    if dst == src {
                        continue;
                    }
                    let (joined_cost, old_dst_cost, dst_key) = if dst < groups.len() {
                        let (_, _, dst_members) = &groups[dst];
                        if dst_members.is_empty() || !problem.group_size_ok(dst_members.len() + 1) {
                            continue;
                        }
                        let mut joined = dst_members.clone();
                        joined.push(d);
                        joined.sort();
                        if !problem.feasible_group(&joined) {
                            continue; // no charger's budget covers the merge
                        }
                        let ub = snaps[dst]
                            .as_ref()
                            .and_then(|(s, choice)| join_upper_bound(problem, s, choice, d));
                        (
                            priced(&mut memo, &joined, ub).group_cost().value(),
                            cost_of[dst],
                            Some(dst),
                        )
                    } else {
                        if members.len() == 1 {
                            continue; // already a singleton
                        }
                        (
                            priced(&mut memo, &[d], None).group_cost().value(),
                            0.0,
                            None,
                        )
                    };
                    let gain = (cost_of[src] + old_dst_cost) - (residual_cost + joined_cost);
                    if gain > eps {
                        match &best {
                            Some((_, _, _, g)) if *g >= gain => {}
                            _ => best = Some((src, local, dst_key, gain)),
                        }
                    }
                }
            }
        }
        let Some((src, local, dst, _gain)) = best else {
            break;
        };
        let d = groups[src].2.remove(local);
        match dst {
            Some(dst) => groups[dst].2.push(d),
            None => {
                groups.push((ChargerId::new(0), Point::ORIGIN, vec![d]));
                cost_of.push(0.0);
            }
        }
        // Re-pick facilities and refresh cached costs for touched groups.
        for gi in [Some(src), dst.or(Some(groups.len() - 1))]
            .into_iter()
            .flatten()
        {
            if groups[gi].2.is_empty() {
                cost_of[gi] = 0.0;
                continue;
            }
            let mut sorted = groups[gi].2.clone();
            sorted.sort();
            let f = priced(&mut memo, &sorted, None);
            groups[gi].0 = f.charger;
            groups[gi].1 = f.point;
            groups[gi].2 = sorted;
            cost_of[gi] = f.group_cost().value();
        }
    }
    groups.retain(|(_, _, members)| !members.is_empty());
}

/// Ejects members whose comprehensive cost exceeds their solo cost, until
/// no violation remains. Each ejection permanently moves one device to a
/// singleton group, so the loop terminates in at most `n` ejections.
fn repair_individual_rationality(
    problem: &CcsProblem,
    sharing: &dyn CostSharing,
    groups: &mut Vec<(ChargerId, Point, Vec<DeviceId>)>,
) {
    let eps = Cost::new(1e-9);
    let solo: Vec<Cost> = problem
        .scenario()
        .device_ids()
        .map(|d| solo_cost(problem, d))
        .collect();
    loop {
        let mut ejected: Option<(usize, DeviceId)> = None;
        'outer: for (gi, (charger, point, members)) in groups.iter().enumerate() {
            if members.len() <= 1 {
                continue;
            }
            let mut sorted = members.clone();
            sorted.sort();
            let facility = evaluate_facility(problem, *charger, &sorted, *point);
            let shares = sharing.shares(problem, *charger, &sorted, point, &facility.bill);
            for (idx, &d) in sorted.iter().enumerate() {
                let cost = shares[idx] + facility.moving[idx];
                if cost > solo[d.index()] + eps {
                    ejected = Some((gi, d));
                    break 'outer;
                }
            }
        }
        match ejected {
            Some((gi, d)) => {
                groups[gi].2.retain(|&x| x != d);
                // Re-pick the residual group's best facility.
                let mut residual = groups[gi].2.clone();
                residual.sort();
                let f = best_facility(problem, &residual);
                groups[gi].0 = f.charger;
                groups[gi].1 = f.point;
                // The ejected device hires alone at its best facility.
                let solo = best_facility(problem, &[d]);
                groups.push((solo.charger, solo.point, vec![d]));
            }
            None => break,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::noncoop::noncooperation;
    use crate::algo::optimal::{optimal, OptimalOptions};
    use crate::problem::CostParams;
    use crate::sharing::{EqualShare, ProportionalShare};
    use ccs_wrsn::scenario::{ParamRange, Placement, ScenarioGenerator};

    fn problem(seed: u64, n: usize, m: usize) -> CcsProblem {
        CcsProblem::new(
            ScenarioGenerator::new(seed)
                .devices(n)
                .chargers(m)
                .generate(),
        )
    }

    #[test]
    fn produces_valid_schedules() {
        for seed in [1, 2, 3] {
            let p = problem(seed, 20, 5);
            let s = ccsa(&p, &EqualShare, CcsaOptions::default());
            s.validate(&p).unwrap();
            assert_eq!(s.algorithm(), "ccsa");
        }
    }

    #[test]
    fn never_worse_than_noncooperation() {
        for seed in 1..=8 {
            let p = problem(seed, 15, 4);
            let coop = ccsa(&p, &EqualShare, CcsaOptions::default());
            let solo = noncooperation(&p, &EqualShare);
            assert!(
                coop.total_cost() <= solo.total_cost() + Cost::new(1e-6),
                "seed {seed}: ccsa {} vs ncp {}",
                coop.total_cost(),
                solo.total_cost()
            );
        }
    }

    #[test]
    fn close_to_optimal_on_small_instances() {
        let mut worst_ratio = 1.0f64;
        for seed in 1..=6 {
            let p = problem(seed, 8, 3);
            let approx = ccsa(&p, &EqualShare, CcsaOptions::default());
            let exact = optimal(&p, &EqualShare, OptimalOptions::default()).unwrap();
            let ratio = approx.total_cost() / exact.total_cost();
            assert!(ratio >= 1.0 - 1e-9, "approximation cannot beat optimal");
            worst_ratio = worst_ratio.max(ratio);
        }
        // The paper reports ~7.3% above optimal on average; allow slack but
        // catch gross regressions.
        assert!(
            worst_ratio < 1.35,
            "worst ratio {worst_ratio} too far from optimal"
        );
    }

    #[test]
    fn individual_rationality_holds_after_repair() {
        for seed in 1..=6 {
            let p = problem(seed, 15, 4);
            for scheme in [&EqualShare as &dyn CostSharing, &ProportionalShare] {
                let s = ccsa(&p, scheme, CcsaOptions::default());
                for d in p.scenario().device_ids() {
                    let cost = s.device_cost(d).unwrap();
                    let solo = solo_cost(&p, d);
                    assert!(
                        cost <= solo + Cost::new(1e-6),
                        "seed {seed} {}: device {d} pays {cost} over solo {solo}",
                        scheme.name()
                    );
                }
            }
        }
    }

    #[test]
    fn all_inner_minimizers_agree_on_exactness_or_do_no_worse() {
        let p = problem(5, 12, 3);
        let exact = ccsa(
            &p,
            &EqualShare,
            CcsaOptions {
                minimizer: InnerMinimizer::PrefixScan,
                ..Default::default()
            },
        );
        for minimizer in [
            InnerMinimizer::DinkelbachSeparable,
            InnerMinimizer::DinkelbachMnp,
        ] {
            let other = ccsa(
                &p,
                &EqualShare,
                CcsaOptions {
                    minimizer,
                    ..Default::default()
                },
            );
            other.validate(&p).unwrap();
            assert!(
                (other.total_cost() - exact.total_cost()).abs() < Cost::new(1e-6),
                "{minimizer:?} diverged: {} vs {}",
                other.total_cost(),
                exact.total_cost()
            );
        }
        // The heuristic must still be valid and no better than exact rounds
        // would allow (it can be worse).
        let heuristic = ccsa(
            &p,
            &EqualShare,
            CcsaOptions {
                minimizer: InnerMinimizer::GreedyAccretion,
                ..Default::default()
            },
        );
        heuristic.validate(&p).unwrap();
    }

    #[test]
    fn respects_group_size_cap() {
        let scenario = ScenarioGenerator::new(2).devices(12).chargers(3).generate();
        let p = CcsProblem::with_params(
            scenario,
            CostParams {
                max_group_size: Some(3),
                ..Default::default()
            },
        );
        let s = ccsa(&p, &EqualShare, CcsaOptions::default());
        s.validate(&p).unwrap();
        assert!(s.groups().iter().all(|g| g.members.len() <= 3));
    }

    #[test]
    fn clustered_high_fee_instances_form_large_groups() {
        let scenario = ScenarioGenerator::new(7)
            .devices(12)
            .chargers(3)
            .field_side(60.0)
            .device_placement(Placement::Clustered {
                count: 2,
                sigma: 3.0,
            })
            .base_fee_range(ParamRange::fixed(60.0))
            .generate();
        let p = CcsProblem::new(scenario);
        let s = ccsa(&p, &EqualShare, CcsaOptions::default());
        assert!(
            s.groups().len() <= 6,
            "high fees + clusters should yield few groups, got {}",
            s.groups().len()
        );
    }

    #[test]
    fn refinement_never_hurts() {
        let p = problem(9, 10, 3);
        let refined = ccsa(&p, &EqualShare, CcsaOptions::default());
        let raw = ccsa(
            &p,
            &EqualShare,
            CcsaOptions {
                refine_gathering: false,
                ..Default::default()
            },
        );
        // Refinement only replaces a group's point when strictly better, and
        // IR repair operates identically, so totals cannot get worse for the
        // same grouping. (Groupings coincide because refinement happens
        // after all commitments.)
        assert!(refined.total_cost() <= raw.total_cost() + Cost::new(1e-9));
    }

    #[test]
    fn single_device_single_charger() {
        let p = problem(1, 1, 1);
        let s = ccsa(&p, &EqualShare, CcsaOptions::default());
        s.validate(&p).unwrap();
        assert_eq!(s.groups().len(), 1);
    }

    #[test]
    fn incremental_sweep_reuses_cached_scans() {
        // Reuse needs a group-size cap: an uncapped prefix scan walks every
        // remaining device, so each commitment invalidates every cache (the
        // scan genuinely depends on the whole ground set there).
        ccs_telemetry::global().enable();
        let skipped = ccs_telemetry::counter!("ccsa.facilities_skipped");
        let before = skipped.get();
        let scenario = ScenarioGenerator::new(3).devices(30).chargers(4).generate();
        let p = CcsProblem::with_params(
            scenario,
            CostParams {
                max_group_size: Some(3),
                ..Default::default()
            },
        );
        let s = ccsa(&p, &EqualShare, CcsaOptions::default());
        s.validate(&p).unwrap();
        assert!(
            skipped.get() > before,
            "a multi-round capped sweep must find some facility scans still valid"
        );
    }
}

#[cfg(test)]
mod budget_tests {
    use super::*;
    use crate::algo::ccsga;
    use crate::algo::optimal::{optimal, OptimalOptions};
    use crate::algo::CcsgaOptions;
    use crate::sharing::EqualShare;
    use ccs_wrsn::scenario::{ParamRange, ScenarioGenerator};
    use ccs_wrsn::units::Joules;

    fn budgeted_problem(seed: u64, n: usize) -> CcsProblem {
        // Budgets admit roughly two average devices per hire.
        let scenario = ScenarioGenerator::new(seed)
            .devices(n)
            .chargers(4)
            .charger_energy_budget_range(ParamRange::new(9_000.0, 12_000.0))
            .generate();
        CcsProblem::new(scenario)
    }

    #[test]
    fn all_algorithms_respect_energy_budgets() {
        for seed in [1, 2, 3] {
            let p = budgeted_problem(seed, 10);
            for schedule in [
                ccsa(&p, &EqualShare, CcsaOptions::default()),
                ccsga::ccsga(&p, &EqualShare, CcsgaOptions::default()).schedule,
                crate::algo::noncoop::noncooperation(&p, &EqualShare),
                optimal(&p, &EqualShare, OptimalOptions::default()).unwrap(),
            ] {
                schedule
                    .validate(&p)
                    .unwrap_or_else(|e| panic!("seed {seed} {}: {e}", schedule.algorithm()));
                for g in schedule.groups() {
                    let demand: Joules = g.members.iter().map(|&d| p.device(d).demand()).sum();
                    assert!(
                        p.charger(g.charger).can_deliver(demand),
                        "seed {seed} {}: group over budget",
                        schedule.algorithm()
                    );
                }
            }
        }
    }

    #[test]
    fn budgets_limit_group_sizes() {
        let p = budgeted_problem(5, 12);
        let s = ccsa(&p, &EqualShare, CcsaOptions::default());
        // With ~10 kJ budgets and 2-8 kJ demands, groups of 6+ are impossible.
        assert!(s.groups().iter().all(|g| g.members.len() <= 5));
        assert!(
            s.groups().len() >= 3,
            "budgets force more groups than the unbudgeted instance"
        );
    }

    #[test]
    fn budgeted_optimal_still_bounds_heuristics() {
        for seed in [1, 2] {
            let p = budgeted_problem(seed, 8);
            let opt = optimal(&p, &EqualShare, OptimalOptions::default()).unwrap();
            let greedy = ccsa(&p, &EqualShare, CcsaOptions::default());
            assert!(opt.total_cost() <= greedy.total_cost() + Cost::new(1e-6));
        }
    }
}
