//! CCSA — the paper's approximation algorithm: greedy facility commitment
//! driven by submodular minimum-density search.
//!
//! One *facility* is a `(charger, gathering point)` pair; candidate points
//! are the unscheduled device positions, the charger depots and a coarse
//! field grid. For a fixed facility the group cost over a member set `S`
//! is the separable submodular function
//!
//! ```text
//! f(S) = [b_j + τ_j·d(q_j,p)]·1[S≠∅] + Σ_{i∈S} (π_j·w_i + κ_i·d(p_i,p)) + η_j·g(|S|)
//! ```
//!
//! Each greedy round finds, over all facilities, the nonempty member set
//! with the **minimum per-member cost** `f(S)/|S|` — a submodular
//! minimum-ratio problem — commits the winner, removes its members, and
//! repeats. This is the classical greedy for submodular set cover, giving
//! the `H_n` approximation bound the paper's "approximation algorithm"
//! framing refers to.
//!
//! Three inner minimizers implement the density search (the `abl_sfm`
//! ablation): an exact `O(n log n)` prefix scan exploiting separability
//! (production default), exact Dinkelbach + Fujishige–Wolfe min-norm-point
//! SFM (the paper's generic machinery), and a cheap greedy heuristic.
//!
//! After commitment each group's gathering point is re-optimized with the
//! problem's strategy (Weiszfeld by default), and an optional
//! individual-rationality repair ejects any member that would pay more than
//! its solo cost — the cooperation guarantee the paper's cost-sharing
//! schemes are designed to sustain.

use crate::algo::noncoop::solo_cost;
use crate::cost::{
    best_facility, evaluate_facility, join_upper_bound, leave_upper_bound,
    try_best_facility_with_upper, FacilityChoice,
};
use crate::gathering::gathering_point;
use crate::grid::UniformGrid;
use crate::problem::CcsProblem;
use crate::schedule::{GroupPlan, Schedule};
use crate::sharing::CostSharing;
use ccs_submodular::density::{min_density_mnp, min_density_separable};
use ccs_submodular::minimize::SeparableFn;
use ccs_submodular::mnp::MnpOptions;
use ccs_submodular::set_fn::SetFunction;
use ccs_wrsn::entities::{ChargerId, DeviceId};
use ccs_wrsn::geometry::Point;
use ccs_wrsn::units::Cost;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Which engine solves the per-facility minimum-density subproblem.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InnerMinimizer {
    /// Exact `O(n log n)` prefix scan over sorted weights (default).
    #[default]
    PrefixScan,
    /// Exact Dinkelbach ratio search with the separable SFM oracle.
    DinkelbachSeparable,
    /// Exact Dinkelbach ratio search with Fujishige–Wolfe min-norm-point
    /// SFM (the fully general machinery; slowest).
    DinkelbachMnp,
    /// Greedy accretion heuristic (cheapest-first; may be suboptimal).
    GreedyAccretion,
}

/// Options for [`ccsa`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CcsaOptions {
    /// Inner density minimizer.
    pub minimizer: InnerMinimizer,
    /// Side of the coarse candidate grid added to device/charger positions
    /// (`0` disables grid candidates).
    pub candidate_grid: usize,
    /// Re-optimize each committed group's gathering point with the
    /// problem's strategy.
    pub refine_gathering: bool,
    /// Eject members that pay more than their solo cost (individual
    /// rationality repair).
    pub ir_repair: bool,
    /// After the greedy commitments, run a bounded single-device
    /// reassignment descent on total group cost (strictly improving moves
    /// only).
    pub local_improvement: bool,
}

impl Default for CcsaOptions {
    fn default() -> Self {
        CcsaOptions {
            minimizer: InnerMinimizer::PrefixScan,
            candidate_grid: 4,
            refine_gathering: true,
            ir_repair: true,
            local_improvement: true,
        }
    }
}

/// Runs CCSA and returns its schedule.
///
/// # Examples
///
/// ```
/// use ccs_core::prelude::*;
/// use ccs_wrsn::scenario::ScenarioGenerator;
///
/// let problem = CcsProblem::new(ScenarioGenerator::new(1).devices(8).chargers(3).generate());
/// let schedule = ccsa(&problem, &EqualShare, CcsaOptions::default());
/// schedule.validate(&problem)?;
/// assert!(schedule.total_cost() <= noncooperation(&problem, &EqualShare).total_cost());
/// # Ok::<(), ccs_core::schedule::ScheduleError>(())
/// ```
pub fn ccsa(problem: &CcsProblem, sharing: &dyn CostSharing, options: CcsaOptions) -> Schedule {
    let _span = ccs_telemetry::span!("ccsa");
    let n = problem.num_devices();
    let mut remaining: Vec<DeviceId> = problem.scenario().device_ids().collect();
    let mut committed: Vec<(ChargerId, Point, Vec<DeviceId>)> = Vec::new();

    {
        let _greedy = ccs_telemetry::span!("greedy");
        let rounds = ccs_telemetry::counter!("ccsa.rounds");
        while !remaining.is_empty() {
            rounds.incr();
            let (charger, point, members) = best_round_group(problem, &remaining, options);
            debug_assert!(!members.is_empty());
            remaining.retain(|d| !members.contains(d));
            committed.push((charger, point, members));
        }
    }

    let mut groups: Vec<(ChargerId, Point, Vec<DeviceId>)> = {
        let _refine = ccs_telemetry::span!("refine");
        committed
            .into_iter()
            .map(|(c, p, members)| refine(problem, c, p, members, options))
            .collect()
    };

    if options.local_improvement {
        let _improve = ccs_telemetry::span!("local_improvement");
        local_improvement(problem, &mut groups);
    }

    if options.ir_repair {
        let _repair = ccs_telemetry::span!("ir_repair");
        repair_individual_rationality(problem, sharing, &mut groups);
    }

    let mut plans: Vec<GroupPlan> = groups
        .into_iter()
        .map(|(c, p, mut members)| {
            members.sort();
            let facility = evaluate_facility(problem, c, &members, p);
            GroupPlan::from_facility(problem, members, facility, sharing)
        })
        .collect();
    plans.sort_by_key(|g| g.members[0]);

    let schedule = Schedule::new(plans, "ccsa", sharing.name());
    debug_assert!(schedule.validate(problem).is_ok(), "n = {n}");
    schedule
}

/// The best `(facility, member set)` of one greedy round: minimum
/// per-member group cost over all facilities.
///
/// Every `(charger, gathering point)` facility is priced independently, so
/// the scan runs as one `ccs-par` batch; the winner is then picked by a
/// serial reduce in facility order under the exact `(density, facility
/// index)` total order, keeping the committed group bit-identical at any
/// thread count.
///
/// ## Geometric pruning
///
/// Before a facility pays for its `O(|R|)` weight vector and density scan,
/// a per-facility **density lower bound** is compared against the best
/// density computed so far (a shared atomic, monotonically shrinking):
///
/// ```text
/// density(S) >= fee_jp / cap + η_j · min_k g(k)/k
///             + π_j · w_min + κ_min · d(p, nearest remaining device)
/// ```
///
/// for every nonempty `S ⊆ R` with `|S| <= cap` (all cost terms are
/// nonnegative). The nearest-device distances come from a per-round
/// [`UniformGrid`] over the remaining positions. A pruned facility's true
/// density strictly exceeds some computed density, so it can be neither
/// the exact argmin nor an exact tie — the committed group is identical to
/// the unpruned scan's regardless of thread interleaving (which only
/// affects *how many* facilities get pruned, a telemetry-visible,
/// result-invisible quantity).
fn best_round_group(
    problem: &CcsProblem,
    remaining: &[DeviceId],
    options: CcsaOptions,
) -> (ChargerId, Point, Vec<DeviceId>) {
    let mut candidates: Vec<Point> = remaining
        .iter()
        .map(|&d| problem.device(d).position())
        .collect();
    candidates.extend(problem.scenario().chargers().iter().map(|c| c.position()));
    if options.candidate_grid > 0 {
        candidates.extend(problem.scenario().field().grid(options.candidate_grid));
    }

    // The demand vector is facility-independent; hoist it out of the batch.
    let demands: Vec<f64> = remaining
        .iter()
        .map(|&d| problem.device(d).demand().value())
        .collect();

    let facilities: Vec<(ChargerId, Point)> = problem
        .scenario()
        .charger_ids()
        .flat_map(|charger| candidates.iter().map(move |&point| (charger, point)))
        .collect();

    let tables = problem.tables();
    // Per-round floors for the density lower bound.
    let cap = problem
        .params()
        .max_group_size
        .unwrap_or(remaining.len())
        .min(remaining.len())
        .max(1);
    let w_min = demands.iter().copied().fold(f64::INFINITY, f64::min);
    let kappa_min = remaining
        .iter()
        .map(|&d| tables.move_rate(d))
        .fold(f64::INFINITY, f64::min);
    // min_k g(k)/k over admissible sizes — no concavity assumption needed.
    let min_curve_ratio = (1..=cap)
        .map(|k| tables.curve_value(k) / k as f64)
        .fold(f64::INFINITY, f64::min);
    let remaining_pos: Vec<Point> = remaining
        .iter()
        .map(|&d| tables.device_position(d))
        .collect();
    let remaining_grid = UniformGrid::build(&remaining_pos);
    // Nearest remaining device per candidate point, shared by all chargers.
    let point_dmin: Vec<f64> = candidates
        .iter()
        .map(|p| remaining_grid.nearest_distance(*p, &remaining_pos))
        .collect();

    let facility_evals = ccs_telemetry::counter!("ccsa.facility_evals");
    let facility_pruned = ccs_telemetry::counter!("ccsa.facility_pruned");
    // Best density computed so far, as f64 bits (densities are >= 0, so the
    // bit pattern orders like the value). Monotone min; reads may lag under
    // parallelism, which only weakens pruning, never the winner.
    let best_seen = AtomicU64::new(f64::INFINITY.to_bits());
    let priced: Vec<Option<(f64, Vec<usize>)>> =
        ccs_par::par_map(&facilities, |i, &(charger, point)| {
            facility_evals.incr();
            let c = problem.charger(charger);
            let fee = c.base_fee() + c.travel_cost_rate() * c.position().distance(&point);
            let bound = fee.value() / cap as f64
                + c.occupancy_rate().value() * min_curve_ratio
                + c.energy_price().value() * w_min
                + kappa_min * point_dmin[i % candidates.len()];
            if bound > f64::from_bits(best_seen.load(Ordering::Relaxed)) {
                facility_pruned.incr();
                return None;
            }
            let weights: Vec<f64> = remaining
                .iter()
                .map(|&d| {
                    let dev = problem.device(d);
                    (tables.energy(charger, d)
                        + dev.move_cost_rate() * dev.position().distance(&point))
                    .value()
                })
                .collect();
            let budget = c.energy_budget().map(|b| b.value());
            let f = SeparableFn::new(
                weights,
                fee.value(),
                problem.params().congestion_curve.clone(),
                c.occupancy_rate().value(),
            );
            let result = min_density(&f, &demands, budget, problem, options);
            if let Some((density, _)) = &result {
                let bits = density.to_bits();
                let _ = best_seen.fetch_min(bits, Ordering::Relaxed);
            }
            result
        });

    let mut best: Option<(f64, ChargerId, Point, Vec<DeviceId>)> = None;
    for (&(charger, point), result) in facilities.iter().zip(&priced) {
        let Some((density, picked)) = result else {
            continue;
        };
        let better = match &best {
            Some((b, _, _, _)) => density.total_cmp(b) == std::cmp::Ordering::Less,
            None => true,
        };
        if better {
            let members: Vec<DeviceId> = picked.iter().map(|&i| remaining[i]).collect();
            best = Some((*density, charger, point, members));
        }
    }
    let (_, charger, point, members) = best.expect("some facility always admits a group");
    (charger, point, members)
}

/// Minimum-density member set under the group-size cap.
/// Returns `(density, local indices)`; `None` only if nothing is admissible
/// (cannot happen: singletons are always admissible).
fn min_density(
    f: &SeparableFn,
    demands: &[f64],
    budget: Option<f64>,
    problem: &CcsProblem,
    options: CcsaOptions,
) -> Option<(f64, Vec<usize>)> {
    let n = f.ground_size();
    if n == 0 {
        return None;
    }
    let cap = problem.params().max_group_size.unwrap_or(n).min(n).max(1);

    match options.minimizer {
        InnerMinimizer::PrefixScan => prefix_scan_density(f, demands, budget, cap),
        InnerMinimizer::GreedyAccretion => greedy_accretion_density(f, demands, budget, cap),
        InnerMinimizer::DinkelbachSeparable | InnerMinimizer::DinkelbachMnp => {
            let result = if options.minimizer == InnerMinimizer::DinkelbachSeparable {
                min_density_separable(f)
            } else {
                min_density_mnp(f, MnpOptions::default())
            }
            .expect("separable functions are normalized and nonempty here");
            let picked = result.minimizer.to_vec();
            let demand: f64 = picked.iter().map(|&i| demands[i]).sum();
            if picked.len() <= cap && budget.is_none_or(|b| demand <= b) {
                Some((result.density, picked))
            } else {
                // The unconstrained optimum violates the cap or the
                // charger's energy budget; fall back to the constrained
                // scan (a sorted-prefix truncation, see below).
                prefix_scan_density(f, demands, budget, cap)
            }
        }
    }
}

/// Capped density minimization for separable functions: for each
/// cardinality `k` the best size-`k` set takes the `k` smallest weights,
/// so scanning sorted prefixes is exhaustive (exact) for the size cap.
/// An energy budget is honored by skipping members that would overflow it —
/// a greedy truncation that is exact without a budget and a documented
/// heuristic with one (the budgeted variant is a knapsack).
///
/// Returns `None` only if not even a single member fits the budget.
fn prefix_scan_density(
    f: &SeparableFn,
    demands: &[f64],
    budget: Option<f64>,
    cap: usize,
) -> Option<(f64, Vec<usize>)> {
    let mut order: Vec<usize> = (0..f.ground_size()).collect();
    order.sort_by(|&a, &b| f.weights()[a].total_cmp(&f.weights()[b]).then(a.cmp(&b)));
    let curve = congestion_parts(f, cap);
    let mut best: Option<(f64, usize)> = None;
    let mut acc = 0.0;
    let mut demand = 0.0;
    let mut taken: Vec<usize> = Vec::new();
    for &i in &order {
        if taken.len() == cap {
            break;
        }
        if let Some(b) = budget {
            if demand + demands[i] > b {
                continue; // would overflow this charger's budget
            }
        }
        taken.push(i);
        acc += f.weights()[i];
        demand += demands[i];
        let k = taken.len();
        let density = (f.fee() + acc + curve[k]) / k as f64;
        let better = match best {
            Some((b, _)) => density < b - 1e-15,
            None => true,
        };
        if better {
            best = Some((density, k));
        }
    }
    best.map(|(density, k)| {
        taken.truncate(k);
        (density, taken)
    })
}

/// Greedy heuristic: start from the cheapest element, keep adding the next
/// cheapest (budget permitting) while the density improves.
fn greedy_accretion_density(
    f: &SeparableFn,
    demands: &[f64],
    budget: Option<f64>,
    cap: usize,
) -> Option<(f64, Vec<usize>)> {
    let mut order: Vec<usize> = (0..f.ground_size()).collect();
    order.sort_by(|&a, &b| f.weights()[a].total_cmp(&f.weights()[b]).then(a.cmp(&b)));
    order.retain(|&i| budget.is_none_or(|b| demands[i] <= b));
    let first = *order.first()?;
    let curve = congestion_parts(f, cap);
    let mut taken = vec![first];
    let mut acc = f.weights()[first];
    let mut demand = demands[first];
    let mut density = f.fee() + acc + curve[1];
    for &i in order.iter().skip(1) {
        if taken.len() == cap {
            break;
        }
        if let Some(b) = budget {
            if demand + demands[i] > b {
                continue;
            }
        }
        let k = taken.len();
        let candidate = (f.fee() + acc + f.weights()[i] + curve[k + 1]) / (k + 1) as f64;
        if candidate >= density {
            break;
        }
        taken.push(i);
        acc += f.weights()[i];
        demand += demands[i];
        density = candidate;
    }
    Some((density, taken))
}

/// The congestion part of the bill as a function of cardinality, tabulated
/// for `k ∈ 0..=cap` in `O(cap)` with **no oracle evaluations**.
///
/// Historically this was reconstructed per call as
/// `f({first k}) − fee − Σ_{i<k} w_i`, burning one `SetFunction::eval` (and
/// a `Subset` allocation) per cardinality per facility. The table replays
/// those floating-point operations verbatim — build the raw prefix value,
/// then cancel fee and prefix-weight sum in the same order — so every entry
/// is bitwise the value the oracle round-trip produced, and CCSA's committed
/// groups are unchanged.
fn congestion_parts(f: &SeparableFn, cap: usize) -> Vec<f64> {
    let mut parts = Vec::with_capacity(cap + 1);
    parts.push(0.0);
    let mut prefix = 0.0;
    for k in 1..=cap {
        prefix += f.weights()[k - 1];
        let raw = f.fee() + prefix + f.scale() * f.curve().eval(k);
        parts.push((raw - f.fee()) - prefix);
    }
    parts
}

/// Re-optimizes a committed group's gathering point.
fn refine(
    problem: &CcsProblem,
    charger: ChargerId,
    point: Point,
    members: Vec<DeviceId>,
    options: CcsaOptions,
) -> (ChargerId, Point, Vec<DeviceId>) {
    if !options.refine_gathering {
        return (charger, point, members);
    }
    let refined = gathering_point(problem, charger, &members, problem.params().gathering);
    let old = evaluate_facility(problem, charger, &members, point).group_cost();
    let new = evaluate_facility(problem, charger, &members, refined).group_cost();
    if new < old {
        (charger, refined, members)
    } else {
        (charger, point, members)
    }
}

/// Bounded best-improvement descent: repeatedly move a single device to
/// the group (or fresh singleton) that most reduces the sum of group costs,
/// re-picking each touched group's best facility. Each applied move
/// strictly decreases a bounded-below total, and the loop is additionally
/// capped, so it terminates.
///
/// Facility pricing dominates the runtime, so two kernel fast paths feed
/// the memo: each scan snapshots every group's current facility evaluation
/// once, and each candidate "member leaves src" / "member joins dst" set is
/// priced through [`try_best_facility_with_upper`] seeded with the
/// [`DeltaEval`]-style bound at the snapshot facility
/// ([`leave_upper_bound`] / [`join_upper_bound`]) — pruning most chargers
/// before any Weiszfeld solve while returning bitwise the unseeded scan's
/// choice.
fn local_improvement(problem: &CcsProblem, groups: &mut Vec<(ChargerId, Point, Vec<DeviceId>)>) {
    const MAX_MOVES: usize = 1_000;
    let eps = 1e-9;
    // Facility pricing is by far the hot path here, and the same member
    // sets are re-priced on every scan; memoize by sorted member ids.
    let mut memo: HashMap<Vec<DeviceId>, FacilityChoice> = HashMap::new();
    let priced = |memo: &mut HashMap<Vec<DeviceId>, FacilityChoice>,
                  sorted: &[DeviceId],
                  ub: Option<Cost>|
     -> FacilityChoice {
        if let Some(hit) = memo.get(sorted) {
            return hit.clone();
        }
        let f = match ub {
            Some(ub) => try_best_facility_with_upper(problem, sorted, ub)
                .expect("no charger's energy budget covers this group's demand"),
            None => best_facility(problem, sorted),
        };
        memo.insert(sorted.to_vec(), f.clone());
        f
    };
    let mut cost_of: Vec<f64> = groups
        .iter()
        .map(|(c, p, members)| {
            let mut sorted = members.clone();
            sorted.sort();
            evaluate_facility(problem, *c, &sorted, *p)
                .group_cost()
                .value()
        })
        .collect();

    for _ in 0..MAX_MOVES {
        // Snapshot each group's current facility evaluation (sorted member
        // list + choice); the per-candidate upper bounds below are deltas
        // off these.
        let snaps: Vec<Option<(Vec<DeviceId>, FacilityChoice)>> = groups
            .iter()
            .map(|(c, p, members)| {
                if members.is_empty() {
                    return None;
                }
                let mut sorted = members.clone();
                sorted.sort();
                let choice = evaluate_facility(problem, *c, &sorted, *p);
                Some((sorted, choice))
            })
            .collect();
        let mut best: Option<(usize, usize, Option<usize>, f64)> = None; // (src, local, dst, gain)
        for (src, (_, _, members)) in groups.iter().enumerate() {
            if members.is_empty() {
                continue;
            }
            for (local, &d) in members.iter().enumerate() {
                // Cost of the source group without d.
                let mut residual: Vec<DeviceId> =
                    members.iter().copied().filter(|&x| x != d).collect();
                residual.sort();
                let residual_cost = if residual.is_empty() {
                    0.0
                } else {
                    let ub = snaps[src]
                        .as_ref()
                        .and_then(|(s, choice)| leave_upper_bound(problem, s, choice, d));
                    priced(&mut memo, &residual, ub).group_cost().value()
                };
                // Destination: every other group, or a fresh singleton.
                for dst in 0..=groups.len() {
                    if dst == src {
                        continue;
                    }
                    let (joined_cost, old_dst_cost, dst_key) = if dst < groups.len() {
                        let (_, _, dst_members) = &groups[dst];
                        if dst_members.is_empty() || !problem.group_size_ok(dst_members.len() + 1) {
                            continue;
                        }
                        let mut joined = dst_members.clone();
                        joined.push(d);
                        joined.sort();
                        if !problem.feasible_group(&joined) {
                            continue; // no charger's budget covers the merge
                        }
                        let ub = snaps[dst]
                            .as_ref()
                            .and_then(|(s, choice)| join_upper_bound(problem, s, choice, d));
                        (
                            priced(&mut memo, &joined, ub).group_cost().value(),
                            cost_of[dst],
                            Some(dst),
                        )
                    } else {
                        if members.len() == 1 {
                            continue; // already a singleton
                        }
                        (
                            priced(&mut memo, &[d], None).group_cost().value(),
                            0.0,
                            None,
                        )
                    };
                    let gain = (cost_of[src] + old_dst_cost) - (residual_cost + joined_cost);
                    if gain > eps {
                        match &best {
                            Some((_, _, _, g)) if *g >= gain => {}
                            _ => best = Some((src, local, dst_key, gain)),
                        }
                    }
                }
            }
        }
        let Some((src, local, dst, _gain)) = best else {
            break;
        };
        let d = groups[src].2.remove(local);
        match dst {
            Some(dst) => groups[dst].2.push(d),
            None => {
                groups.push((ChargerId::new(0), Point::ORIGIN, vec![d]));
                cost_of.push(0.0);
            }
        }
        // Re-pick facilities and refresh cached costs for touched groups.
        for gi in [Some(src), dst.or(Some(groups.len() - 1))]
            .into_iter()
            .flatten()
        {
            if groups[gi].2.is_empty() {
                cost_of[gi] = 0.0;
                continue;
            }
            let mut sorted = groups[gi].2.clone();
            sorted.sort();
            let f = priced(&mut memo, &sorted, None);
            groups[gi].0 = f.charger;
            groups[gi].1 = f.point;
            groups[gi].2 = sorted;
            cost_of[gi] = f.group_cost().value();
        }
    }
    groups.retain(|(_, _, members)| !members.is_empty());
}

/// Ejects members whose comprehensive cost exceeds their solo cost, until
/// no violation remains. Each ejection permanently moves one device to a
/// singleton group, so the loop terminates in at most `n` ejections.
fn repair_individual_rationality(
    problem: &CcsProblem,
    sharing: &dyn CostSharing,
    groups: &mut Vec<(ChargerId, Point, Vec<DeviceId>)>,
) {
    let eps = Cost::new(1e-9);
    let solo: Vec<Cost> = problem
        .scenario()
        .device_ids()
        .map(|d| solo_cost(problem, d))
        .collect();
    loop {
        let mut ejected: Option<(usize, DeviceId)> = None;
        'outer: for (gi, (charger, point, members)) in groups.iter().enumerate() {
            if members.len() <= 1 {
                continue;
            }
            let mut sorted = members.clone();
            sorted.sort();
            let facility = evaluate_facility(problem, *charger, &sorted, *point);
            let shares = sharing.shares(problem, *charger, &sorted, point, &facility.bill);
            for (idx, &d) in sorted.iter().enumerate() {
                let cost = shares[idx] + facility.moving[idx];
                if cost > solo[d.index()] + eps {
                    ejected = Some((gi, d));
                    break 'outer;
                }
            }
        }
        match ejected {
            Some((gi, d)) => {
                groups[gi].2.retain(|&x| x != d);
                // Re-pick the residual group's best facility.
                let mut residual = groups[gi].2.clone();
                residual.sort();
                let f = best_facility(problem, &residual);
                groups[gi].0 = f.charger;
                groups[gi].1 = f.point;
                // The ejected device hires alone at its best facility.
                let solo = best_facility(problem, &[d]);
                groups.push((solo.charger, solo.point, vec![d]));
            }
            None => break,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::noncoop::noncooperation;
    use crate::algo::optimal::{optimal, OptimalOptions};
    use crate::problem::CostParams;
    use crate::sharing::{EqualShare, ProportionalShare};
    use ccs_wrsn::scenario::{ParamRange, Placement, ScenarioGenerator};

    fn problem(seed: u64, n: usize, m: usize) -> CcsProblem {
        CcsProblem::new(
            ScenarioGenerator::new(seed)
                .devices(n)
                .chargers(m)
                .generate(),
        )
    }

    #[test]
    fn produces_valid_schedules() {
        for seed in [1, 2, 3] {
            let p = problem(seed, 20, 5);
            let s = ccsa(&p, &EqualShare, CcsaOptions::default());
            s.validate(&p).unwrap();
            assert_eq!(s.algorithm(), "ccsa");
        }
    }

    #[test]
    fn never_worse_than_noncooperation() {
        for seed in 1..=8 {
            let p = problem(seed, 15, 4);
            let coop = ccsa(&p, &EqualShare, CcsaOptions::default());
            let solo = noncooperation(&p, &EqualShare);
            assert!(
                coop.total_cost() <= solo.total_cost() + Cost::new(1e-6),
                "seed {seed}: ccsa {} vs ncp {}",
                coop.total_cost(),
                solo.total_cost()
            );
        }
    }

    #[test]
    fn close_to_optimal_on_small_instances() {
        let mut worst_ratio = 1.0f64;
        for seed in 1..=6 {
            let p = problem(seed, 8, 3);
            let approx = ccsa(&p, &EqualShare, CcsaOptions::default());
            let exact = optimal(&p, &EqualShare, OptimalOptions::default()).unwrap();
            let ratio = approx.total_cost() / exact.total_cost();
            assert!(ratio >= 1.0 - 1e-9, "approximation cannot beat optimal");
            worst_ratio = worst_ratio.max(ratio);
        }
        // The paper reports ~7.3% above optimal on average; allow slack but
        // catch gross regressions.
        assert!(
            worst_ratio < 1.35,
            "worst ratio {worst_ratio} too far from optimal"
        );
    }

    #[test]
    fn individual_rationality_holds_after_repair() {
        for seed in 1..=6 {
            let p = problem(seed, 15, 4);
            for scheme in [&EqualShare as &dyn CostSharing, &ProportionalShare] {
                let s = ccsa(&p, scheme, CcsaOptions::default());
                for d in p.scenario().device_ids() {
                    let cost = s.device_cost(d).unwrap();
                    let solo = solo_cost(&p, d);
                    assert!(
                        cost <= solo + Cost::new(1e-6),
                        "seed {seed} {}: device {d} pays {cost} over solo {solo}",
                        scheme.name()
                    );
                }
            }
        }
    }

    #[test]
    fn all_inner_minimizers_agree_on_exactness_or_do_no_worse() {
        let p = problem(5, 12, 3);
        let exact = ccsa(
            &p,
            &EqualShare,
            CcsaOptions {
                minimizer: InnerMinimizer::PrefixScan,
                ..Default::default()
            },
        );
        for minimizer in [
            InnerMinimizer::DinkelbachSeparable,
            InnerMinimizer::DinkelbachMnp,
        ] {
            let other = ccsa(
                &p,
                &EqualShare,
                CcsaOptions {
                    minimizer,
                    ..Default::default()
                },
            );
            other.validate(&p).unwrap();
            assert!(
                (other.total_cost() - exact.total_cost()).abs() < Cost::new(1e-6),
                "{minimizer:?} diverged: {} vs {}",
                other.total_cost(),
                exact.total_cost()
            );
        }
        // The heuristic must still be valid and no better than exact rounds
        // would allow (it can be worse).
        let heuristic = ccsa(
            &p,
            &EqualShare,
            CcsaOptions {
                minimizer: InnerMinimizer::GreedyAccretion,
                ..Default::default()
            },
        );
        heuristic.validate(&p).unwrap();
    }

    #[test]
    fn respects_group_size_cap() {
        let scenario = ScenarioGenerator::new(2).devices(12).chargers(3).generate();
        let p = CcsProblem::with_params(
            scenario,
            CostParams {
                max_group_size: Some(3),
                ..Default::default()
            },
        );
        let s = ccsa(&p, &EqualShare, CcsaOptions::default());
        s.validate(&p).unwrap();
        assert!(s.groups().iter().all(|g| g.members.len() <= 3));
    }

    #[test]
    fn clustered_high_fee_instances_form_large_groups() {
        let scenario = ScenarioGenerator::new(7)
            .devices(12)
            .chargers(3)
            .field_side(60.0)
            .device_placement(Placement::Clustered {
                count: 2,
                sigma: 3.0,
            })
            .base_fee_range(ParamRange::fixed(60.0))
            .generate();
        let p = CcsProblem::new(scenario);
        let s = ccsa(&p, &EqualShare, CcsaOptions::default());
        assert!(
            s.groups().len() <= 6,
            "high fees + clusters should yield few groups, got {}",
            s.groups().len()
        );
    }

    #[test]
    fn refinement_never_hurts() {
        let p = problem(9, 10, 3);
        let refined = ccsa(&p, &EqualShare, CcsaOptions::default());
        let raw = ccsa(
            &p,
            &EqualShare,
            CcsaOptions {
                refine_gathering: false,
                ..Default::default()
            },
        );
        // Refinement only replaces a group's point when strictly better, and
        // IR repair operates identically, so totals cannot get worse for the
        // same grouping. (Groupings coincide because refinement happens
        // after all commitments.)
        assert!(refined.total_cost() <= raw.total_cost() + Cost::new(1e-9));
    }

    #[test]
    fn single_device_single_charger() {
        let p = problem(1, 1, 1);
        let s = ccsa(&p, &EqualShare, CcsaOptions::default());
        s.validate(&p).unwrap();
        assert_eq!(s.groups().len(), 1);
    }
}

#[cfg(test)]
mod budget_tests {
    use super::*;
    use crate::algo::ccsga;
    use crate::algo::optimal::{optimal, OptimalOptions};
    use crate::algo::CcsgaOptions;
    use crate::sharing::EqualShare;
    use ccs_wrsn::scenario::{ParamRange, ScenarioGenerator};
    use ccs_wrsn::units::Joules;

    fn budgeted_problem(seed: u64, n: usize) -> CcsProblem {
        // Budgets admit roughly two average devices per hire.
        let scenario = ScenarioGenerator::new(seed)
            .devices(n)
            .chargers(4)
            .charger_energy_budget_range(ParamRange::new(9_000.0, 12_000.0))
            .generate();
        CcsProblem::new(scenario)
    }

    #[test]
    fn all_algorithms_respect_energy_budgets() {
        for seed in [1, 2, 3] {
            let p = budgeted_problem(seed, 10);
            for schedule in [
                ccsa(&p, &EqualShare, CcsaOptions::default()),
                ccsga::ccsga(&p, &EqualShare, CcsgaOptions::default()).schedule,
                crate::algo::noncoop::noncooperation(&p, &EqualShare),
                optimal(&p, &EqualShare, OptimalOptions::default()).unwrap(),
            ] {
                schedule
                    .validate(&p)
                    .unwrap_or_else(|e| panic!("seed {seed} {}: {e}", schedule.algorithm()));
                for g in schedule.groups() {
                    let demand: Joules = g.members.iter().map(|&d| p.device(d).demand()).sum();
                    assert!(
                        p.charger(g.charger).can_deliver(demand),
                        "seed {seed} {}: group over budget",
                        schedule.algorithm()
                    );
                }
            }
        }
    }

    #[test]
    fn budgets_limit_group_sizes() {
        let p = budgeted_problem(5, 12);
        let s = ccsa(&p, &EqualShare, CcsaOptions::default());
        // With ~10 kJ budgets and 2-8 kJ demands, groups of 6+ are impossible.
        assert!(s.groups().iter().all(|g| g.members.len() <= 5));
        assert!(
            s.groups().len() >= 3,
            "budgets force more groups than the unbudgeted instance"
        );
    }

    #[test]
    fn budgeted_optimal_still_bounds_heuristics() {
        for seed in [1, 2] {
            let p = budgeted_problem(seed, 8);
            let opt = optimal(&p, &EqualShare, OptimalOptions::default()).unwrap();
            let greedy = ccsa(&p, &EqualShare, CcsaOptions::default());
            assert!(opt.total_cost() <= greedy.total_cost() + Cost::new(1e-6));
        }
    }
}
