//! The noncooperation baseline (NCP): every device hires a charger alone.
//!
//! Each device independently picks its cheapest `(charger, gathering
//! point)`; no fee is shared, no congestion amortized. This is the paper's
//! comparison baseline — CCSA's headline result is a ~27% average saving
//! over NCP in simulation (and ~43% in the field experiment).

use crate::cost::best_facility;
use crate::problem::CcsProblem;
use crate::schedule::{GroupPlan, Schedule};
use crate::sharing::CostSharing;
use ccs_wrsn::entities::DeviceId;

/// Runs the noncooperation baseline.
///
/// The sharing scheme only labels the schedule (a singleton's share is its
/// whole bill under every budget-balanced scheme). The per-device facility
/// scans are independent, so they run as one order-preserving `ccs-par`
/// batch (bit-identical at any thread count); each scan itself goes through
/// the pruned, table-backed `best_facility` kernel path.
pub fn noncooperation(problem: &CcsProblem, sharing: &dyn CostSharing) -> Schedule {
    let devices: Vec<DeviceId> = problem.scenario().device_ids().collect();
    let groups = ccs_par::par_map(&devices, |_, &d| {
        let members = vec![d];
        let facility = best_facility(problem, &members);
        GroupPlan::from_facility(problem, members, facility, sharing)
    });
    let schedule = Schedule::new(groups, "ncp", sharing.name());
    debug_assert!(schedule.validate(problem).is_ok());
    schedule
}

/// The solo comprehensive cost of one device — what it would pay under NCP.
///
/// Used by CCSA's individual-rationality repair and by tests.
pub fn solo_cost(problem: &CcsProblem, device: DeviceId) -> ccs_wrsn::units::Cost {
    let members = [device];
    let facility = best_facility(problem, &members);
    facility.group_cost()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sharing::EqualShare;
    use ccs_wrsn::scenario::ScenarioGenerator;
    use ccs_wrsn::units::Cost;

    fn problem(n: usize) -> CcsProblem {
        CcsProblem::new(ScenarioGenerator::new(9).devices(n).chargers(4).generate())
    }

    #[test]
    fn produces_one_singleton_per_device() {
        let p = problem(7);
        let s = noncooperation(&p, &EqualShare);
        s.validate(&p).unwrap();
        assert_eq!(s.groups().len(), 7);
        assert!(s.groups().iter().all(|g| g.members.len() == 1));
        assert_eq!(s.algorithm(), "ncp");
    }

    #[test]
    fn device_cost_equals_solo_cost() {
        let p = problem(5);
        let s = noncooperation(&p, &EqualShare);
        for d in p.scenario().device_ids() {
            let scheduled = s.device_cost(d).unwrap();
            let solo = solo_cost(&p, d);
            assert!(
                (scheduled - solo).abs() < Cost::new(1e-9),
                "device {d}: scheduled {scheduled} vs solo {solo}"
            );
        }
    }

    #[test]
    fn every_device_pays_at_least_its_energy_bill() {
        let p = problem(6);
        let s = noncooperation(&p, &EqualShare);
        for d in p.scenario().device_ids() {
            let cost = s.device_cost(d).unwrap();
            // Cheapest possible energy price across chargers.
            let cheapest_energy = p
                .scenario()
                .chargers()
                .iter()
                .map(|c| p.device(d).demand() * c.energy_price())
                .min_by(Cost::total_cmp)
                .unwrap();
            assert!(cost >= cheapest_energy);
        }
    }
}
