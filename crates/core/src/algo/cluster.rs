//! CLU — the spatial-clustering baseline.
//!
//! A natural heuristic this literature compares against: cluster devices
//! by position (Lloyd's k-means with one cluster per charger), make each
//! cluster a group, and hire each group's best facility. Clustering sees
//! geography but is blind to the *economics* — fees, prices, congestion,
//! movement rates — so CCSA/CCSGA should beat it whenever those matter,
//! which is exactly what the sweeps show.
//!
//! Clusters that violate the group-size cap or every charger's energy
//! budget are split recursively (2-means) until feasible.

use crate::cost::best_facility;
use crate::problem::CcsProblem;
use crate::schedule::{GroupPlan, Schedule};
use crate::sharing::CostSharing;
use ccs_wrsn::entities::DeviceId;
use ccs_wrsn::geometry::{kmeans, Point};

/// Options for [`clustering`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterOptions {
    /// Number of clusters; `0` means one per charger.
    pub clusters: usize,
    /// Lloyd iterations.
    pub max_iterations: usize,
}

impl Default for ClusterOptions {
    fn default() -> Self {
        ClusterOptions {
            clusters: 0,
            max_iterations: 100,
        }
    }
}

/// Runs the clustering baseline.
pub fn clustering(
    problem: &CcsProblem,
    sharing: &dyn CostSharing,
    options: ClusterOptions,
) -> Schedule {
    let k = if options.clusters == 0 {
        problem.num_chargers()
    } else {
        options.clusters
    };
    let positions: Vec<Point> = problem
        .scenario()
        .devices()
        .iter()
        .map(|d| d.position())
        .collect();
    let assignment = kmeans(&positions, k, options.max_iterations);

    // Collect nonempty clusters as sorted member lists.
    let mut clusters: Vec<Vec<DeviceId>> = vec![Vec::new(); k.min(positions.len())];
    for (i, &c) in assignment.iter().enumerate() {
        clusters[c].push(DeviceId::new(i as u32));
    }
    clusters.retain(|c| !c.is_empty());

    // Enforce feasibility by recursive spatial splitting.
    let mut feasible: Vec<Vec<DeviceId>> = Vec::new();
    for cluster in clusters {
        split_to_feasible(problem, cluster, &mut feasible);
    }

    // Each cluster's facility scan is independent; price them as one
    // order-preserving `ccs-par` batch through the pruned kernel path.
    for members in feasible.iter_mut() {
        members.sort();
    }
    let mut plans: Vec<GroupPlan> = ccs_par::par_map(&feasible, |_, members| {
        let facility = best_facility(problem, members);
        GroupPlan::from_facility(problem, members.clone(), facility, sharing)
    });
    plans.sort_by_key(|g| g.members[0]);

    let schedule = Schedule::new(plans, "clu", sharing.name());
    debug_assert!(schedule.validate(problem).is_ok());
    schedule
}

/// Recursively splits an infeasible cluster by 2-means until every piece
/// fits the size cap and some charger's energy budget. Terminates because
/// singletons are feasible (validated at problem construction) and every
/// split strictly shrinks the pieces.
fn split_to_feasible(problem: &CcsProblem, cluster: Vec<DeviceId>, out: &mut Vec<Vec<DeviceId>>) {
    if problem.feasible_group(&cluster) {
        out.push(cluster);
        return;
    }
    debug_assert!(cluster.len() > 1, "singletons are always feasible");
    let positions: Vec<Point> = cluster
        .iter()
        .map(|&d| problem.device(d).position())
        .collect();
    let halves = kmeans(&positions, 2, 50);
    let mut a = Vec::new();
    let mut b = Vec::new();
    for (i, &d) in cluster.iter().enumerate() {
        if halves[i] == 0 {
            a.push(d);
        } else {
            b.push(d);
        }
    }
    // Co-located points can defeat 2-means; fall back to an even split.
    if a.is_empty() || b.is_empty() {
        let mid = cluster.len() / 2;
        a = cluster[..mid].to_vec();
        b = cluster[mid..].to_vec();
    }
    split_to_feasible(problem, a, out);
    split_to_feasible(problem, b, out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::{ccsa, noncooperation, CcsaOptions};
    use crate::problem::CostParams;
    use crate::sharing::EqualShare;
    use ccs_wrsn::scenario::{ParamRange, ScenarioGenerator};
    use ccs_wrsn::units::Cost;

    fn problem(seed: u64, n: usize, m: usize) -> CcsProblem {
        CcsProblem::new(
            ScenarioGenerator::new(seed)
                .devices(n)
                .chargers(m)
                .generate(),
        )
    }

    #[test]
    fn produces_valid_schedules() {
        for seed in [1, 2, 3] {
            let p = problem(seed, 20, 5);
            let s = clustering(&p, &EqualShare, ClusterOptions::default());
            s.validate(&p).unwrap();
            assert_eq!(s.algorithm(), "clu");
            assert!(s.groups().len() <= 20);
        }
    }

    #[test]
    fn usually_beats_ncp_but_not_ccsa() {
        let mut beats_ncp = 0;
        let mut loses_to_ccsa = 0;
        for seed in 1..=6 {
            let p = problem(seed, 24, 6);
            let clu = clustering(&p, &EqualShare, ClusterOptions::default());
            let solo = noncooperation(&p, &EqualShare);
            let coop = ccsa(&p, &EqualShare, CcsaOptions::default());
            if clu.total_cost() < solo.total_cost() {
                beats_ncp += 1;
            }
            if coop.total_cost() <= clu.total_cost() + Cost::new(1e-6) {
                loses_to_ccsa += 1;
            }
        }
        assert!(
            beats_ncp >= 5,
            "clustering shares fees: {beats_ncp}/6 wins vs NCP"
        );
        assert!(
            loses_to_ccsa >= 5,
            "economics-aware CCSA beats geometry-only clustering: {loses_to_ccsa}/6"
        );
    }

    #[test]
    fn respects_group_size_cap_via_splitting() {
        let scenario = ScenarioGenerator::new(4).devices(15).chargers(2).generate();
        let p = CcsProblem::with_params(
            scenario,
            CostParams {
                max_group_size: Some(3),
                ..Default::default()
            },
        );
        let s = clustering(&p, &EqualShare, ClusterOptions::default());
        s.validate(&p).unwrap();
        assert!(s.groups().iter().all(|g| g.members.len() <= 3));
    }

    #[test]
    fn respects_energy_budgets_via_splitting() {
        let scenario = ScenarioGenerator::new(5)
            .devices(12)
            .chargers(3)
            .charger_energy_budget_range(ParamRange::new(9_000.0, 12_000.0))
            .generate();
        let p = CcsProblem::new(scenario);
        let s = clustering(&p, &EqualShare, ClusterOptions::default());
        s.validate(&p).unwrap();
    }

    #[test]
    fn explicit_cluster_count_is_honored() {
        let p = problem(6, 12, 4);
        let s = clustering(
            &p,
            &EqualShare,
            ClusterOptions {
                clusters: 2,
                max_iterations: 100,
            },
        );
        s.validate(&p).unwrap();
        assert!(
            s.groups().len() <= 4,
            "2 clusters, modulo feasibility splits"
        );
    }
}
