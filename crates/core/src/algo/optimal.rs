//! Exact optimal CCS scheduling via set-partition dynamic programming.
//!
//! `dp[mask]` is the optimal total group cost of scheduling exactly the
//! devices in `mask`. Each state is solved by splitting off the group that
//! contains the lowest-indexed unscheduled device and recursing on the
//! rest, so every partition is enumerated exactly once: `O(3^n)` subset
//! pairs, with each group priced once by
//! [`best_facility`](crate::cost::best_facility). Exponential —
//! guarded to small `n` — but exact, which is what the paper's
//! "7.3% above optimal on average" comparison needs.

use crate::cost::{try_best_facility, FacilityChoice};
use crate::problem::CcsProblem;
use crate::schedule::{GroupPlan, Schedule};
use crate::sharing::CostSharing;
use ccs_wrsn::entities::DeviceId;
use std::fmt;

/// Options for [`optimal`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptimalOptions {
    /// Refuse instances with more devices than this (default 16; the DP is
    /// `O(3^n)`).
    pub max_devices: usize,
}

impl Default for OptimalOptions {
    fn default() -> Self {
        OptimalOptions { max_devices: 16 }
    }
}

/// Error from [`optimal`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OptimalError {
    /// The instance exceeds the configured size guard.
    TooLarge {
        /// Devices in the instance.
        devices: usize,
        /// The configured cap.
        cap: usize,
    },
}

impl fmt::Display for OptimalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptimalError::TooLarge { devices, cap } => write!(
                f,
                "optimal DP is exponential: {devices} devices exceeds the cap of {cap}"
            ),
        }
    }
}

impl std::error::Error for OptimalError {}

/// Computes the exact optimal schedule.
///
/// # Examples
///
/// ```
/// use ccs_core::prelude::*;
/// use ccs_wrsn::scenario::ScenarioGenerator;
///
/// let problem = CcsProblem::new(ScenarioGenerator::new(1).devices(6).chargers(3).generate());
/// let exact = optimal(&problem, &EqualShare, OptimalOptions::default())?;
/// let approx = ccsa(&problem, &EqualShare, CcsaOptions::default());
/// assert!(exact.total_cost() <= approx.total_cost());
/// # Ok::<(), ccs_core::algo::OptimalError>(())
/// ```
///
/// # Errors
///
/// Returns [`OptimalError::TooLarge`] beyond `options.max_devices`.
pub fn optimal(
    problem: &CcsProblem,
    sharing: &dyn CostSharing,
    options: OptimalOptions,
) -> Result<Schedule, OptimalError> {
    let n = problem.num_devices();
    if n > options.max_devices {
        return Err(OptimalError::TooLarge {
            devices: n,
            cap: options.max_devices,
        });
    }

    // Price every admissible group once.
    let full = (1usize << n) - 1;
    let mut facility: Vec<Option<FacilityChoice>> = vec![None; full + 1];
    let mut cost = vec![f64::INFINITY; full + 1];
    for mask in 1..=full {
        let size = mask.count_ones() as usize;
        if !problem.group_size_ok(size) {
            continue;
        }
        let members = members_of(mask);
        // Groups no charger can serve stay at infinite cost and are never
        // chosen; singleton feasibility (validated at problem construction)
        // keeps the DP total finite.
        if let Some(f) = try_best_facility(problem, &members) {
            cost[mask] = f.group_cost().value();
            facility[mask] = Some(f);
        }
    }

    // dp over masks; choice[mask] remembers the group split off.
    let mut dp = vec![f64::INFINITY; full + 1];
    let mut choice = vec![0usize; full + 1];
    dp[0] = 0.0;
    for mask in 1..=full {
        let lsb = mask & mask.wrapping_neg();
        // Enumerate submasks of `mask` containing its lowest set bit.
        let rest = mask ^ lsb;
        let mut sub = rest;
        loop {
            let group = sub | lsb;
            if cost[group].is_finite() {
                let candidate = cost[group] + dp[mask ^ group];
                if candidate < dp[mask] {
                    dp[mask] = candidate;
                    choice[mask] = group;
                }
            }
            if sub == 0 {
                break;
            }
            sub = (sub - 1) & rest;
        }
    }

    // Reconstruct.
    let mut groups = Vec::new();
    let mut mask = full;
    while mask != 0 {
        let group = choice[mask];
        debug_assert!(group != 0, "dp must cover every mask");
        let members = members_of(group);
        let f = facility[group]
            .clone()
            .expect("admissible group was priced");
        groups.push(GroupPlan::from_facility(problem, members, f, sharing));
        mask ^= group;
    }
    groups.reverse();

    let schedule = Schedule::new(groups, "opt", sharing.name());
    debug_assert!(schedule.validate(problem).is_ok());
    Ok(schedule)
}

fn members_of(mask: usize) -> Vec<DeviceId> {
    (0..usize::BITS as usize)
        .filter(|i| mask & (1 << i) != 0)
        .map(|i| DeviceId::new(i as u32))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::noncoop::noncooperation;
    use crate::cost::best_facility;
    use crate::problem::CostParams;
    use crate::sharing::EqualShare;
    use ccs_wrsn::scenario::ScenarioGenerator;
    use ccs_wrsn::units::Cost;

    fn problem(seed: u64, n: usize) -> CcsProblem {
        CcsProblem::new(
            ScenarioGenerator::new(seed)
                .devices(n)
                .chargers(3)
                .generate(),
        )
    }

    #[test]
    fn rejects_large_instances() {
        let p = problem(1, 20);
        let err = optimal(&p, &EqualShare, OptimalOptions::default()).unwrap_err();
        assert!(matches!(
            err,
            OptimalError::TooLarge {
                devices: 20,
                cap: 16
            }
        ));
        assert!(err.to_string().contains("exponential"));
    }

    #[test]
    fn optimal_is_valid_and_beats_ncp() {
        for seed in [1, 2, 3, 4] {
            let p = problem(seed, 7);
            let opt = optimal(&p, &EqualShare, OptimalOptions::default()).unwrap();
            opt.validate(&p).unwrap();
            let ncp = noncooperation(&p, &EqualShare);
            assert!(
                opt.total_cost() <= ncp.total_cost() + Cost::new(1e-6),
                "seed {seed}: OPT {} must not exceed NCP {}",
                opt.total_cost(),
                ncp.total_cost()
            );
        }
    }

    #[test]
    fn optimal_beats_exhaustive_random_partitions() {
        // Sanity: OPT at n=5 must beat 50 random partitions.
        use rand::{Rng, SeedableRng};
        let p = problem(8, 5);
        let opt = optimal(&p, &EqualShare, OptimalOptions::default()).unwrap();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
        for _ in 0..50 {
            // Random assignment of 5 devices to up to 3 groups.
            let mut groups: Vec<Vec<DeviceId>> = vec![Vec::new(); 3];
            for d in 0..5u32 {
                let g = rng.gen_range(0..3);
                groups[g].push(DeviceId::new(d));
            }
            let total: Cost = groups
                .iter()
                .filter(|g| !g.is_empty())
                .map(|g| best_facility(&p, g).group_cost())
                .sum();
            assert!(opt.total_cost() <= total + Cost::new(1e-6));
        }
    }

    #[test]
    fn respects_group_size_cap() {
        let scenario = ScenarioGenerator::new(3).devices(6).chargers(2).generate();
        let p = CcsProblem::with_params(
            scenario,
            CostParams {
                max_group_size: Some(2),
                ..Default::default()
            },
        );
        let s = optimal(&p, &EqualShare, OptimalOptions::default()).unwrap();
        s.validate(&p).unwrap();
        assert!(s.groups().iter().all(|g| g.members.len() <= 2));
    }

    #[test]
    fn single_device_instance() {
        let p = problem(4, 1);
        let s = optimal(&p, &EqualShare, OptimalOptions::default()).unwrap();
        assert_eq!(s.groups().len(), 1);
        let ncp = noncooperation(&p, &EqualShare);
        assert!((s.total_cost() - ncp.total_cost()).abs() < Cost::new(1e-9));
    }

    #[test]
    fn cooperation_helps_when_fees_are_high() {
        // With high base fees and co-located devices OPT must merge groups.
        use ccs_wrsn::scenario::{ParamRange, Placement};
        let scenario = ScenarioGenerator::new(6)
            .devices(6)
            .chargers(2)
            .field_side(50.0)
            .device_placement(Placement::Clustered {
                count: 1,
                sigma: 2.0,
            })
            .base_fee_range(ParamRange::fixed(50.0))
            .generate();
        let p = CcsProblem::new(scenario);
        let opt = optimal(&p, &EqualShare, OptimalOptions::default()).unwrap();
        assert!(
            opt.groups().len() < 6,
            "expected merging, got {} singleton groups",
            opt.groups().len()
        );
        let ncp = noncooperation(&p, &EqualShare);
        assert!(opt.total_cost() < ncp.total_cost());
    }
}
