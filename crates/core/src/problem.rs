//! The Cooperative Charging Scheduling (CCS) problem instance.
//!
//! A [`CcsProblem`] pairs an immutable WRSN [`Scenario`] with the cost-model
//! parameters every scheduler shares: the concave service-time congestion
//! curve, the gathering-point strategy and an optional group-size cap.
//! Keeping the parameters on the problem (not on the algorithms) guarantees
//! all algorithms optimize — and are compared on — the same objective.

use crate::gathering::GatheringStrategy;
use crate::tables::ProblemTables;
use ccs_submodular::set_fn::CardinalityCurve;
use ccs_wrsn::entities::{Charger, ChargerId, Device, DeviceId};
use ccs_wrsn::scenario::Scenario;
use ccs_wrsn::units::Joules;
use std::sync::{Arc, OnceLock};

/// Shared cost-model parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct CostParams {
    /// Concave curve `g` of the service-time congestion term
    /// `η_j · g(|S|)` in the group bill. Must be concave nondecreasing
    /// with `g(0) = 0` (checked).
    pub congestion_curve: CardinalityCurve,
    /// How each group's gathering point is chosen.
    pub gathering: GatheringStrategy,
    /// Optional cap on group size (e.g. a charger can serve at most `k`
    /// devices per hire). `None` means unbounded.
    pub max_group_size: Option<usize>,
}

impl Default for CostParams {
    fn default() -> Self {
        CostParams {
            congestion_curve: CardinalityCurve::Sqrt,
            gathering: GatheringStrategy::Weiszfeld,
            max_group_size: None,
        }
    }
}

/// A CCS problem instance: world + cost model.
#[derive(Debug, Clone)]
pub struct CcsProblem {
    scenario: Scenario,
    params: CostParams,
    /// The evaluation kernel, built lazily on first use. Clones share the
    /// already-built tables (they are pure functions of scenario + params).
    tables: OnceLock<Arc<ProblemTables>>,
}

impl CcsProblem {
    /// Wraps a scenario with the default cost parameters.
    pub fn new(scenario: Scenario) -> Self {
        CcsProblem::with_params(scenario, CostParams::default())
    }

    /// Wraps a scenario with explicit cost parameters.
    ///
    /// # Panics
    ///
    /// Panics if the congestion curve is not concave nondecreasing (that
    /// would silently break the submodularity CCSA relies on), or if
    /// `max_group_size` is `Some(0)`.
    pub fn with_params(scenario: Scenario, params: CostParams) -> Self {
        assert!(
            params
                .congestion_curve
                .is_concave_nondecreasing(scenario.devices().len().max(2)),
            "congestion curve must be concave nondecreasing"
        );
        assert!(
            params.max_group_size != Some(0),
            "max group size of zero admits no groups"
        );
        // Every device must be individually servable, or the instance is
        // unschedulable (singletons are the universal fallback).
        for d in scenario.devices() {
            assert!(
                scenario
                    .chargers()
                    .iter()
                    .any(|c| c.can_deliver(d.demand())),
                "device {} demands {} but no charger's energy budget covers it",
                d.id(),
                d.demand()
            );
        }
        CcsProblem {
            scenario,
            params,
            tables: OnceLock::new(),
        }
    }

    /// The precomputed evaluation kernel (see [`ProblemTables`]), built on
    /// first access and shared by every scheduler run on this instance.
    #[inline]
    pub fn tables(&self) -> &ProblemTables {
        self.tables.get_or_init(|| {
            Arc::new(ProblemTables::new(
                &self.scenario,
                &self.params.congestion_curve,
            ))
        })
    }

    /// The underlying world.
    #[inline]
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// The shared cost parameters.
    #[inline]
    pub fn params(&self) -> &CostParams {
        &self.params
    }

    /// Number of devices `n`.
    #[inline]
    pub fn num_devices(&self) -> usize {
        self.scenario.devices().len()
    }

    /// Number of chargers `m`.
    #[inline]
    pub fn num_chargers(&self) -> usize {
        self.scenario.chargers().len()
    }

    /// Device lookup (panics on foreign ids, same as [`Scenario::device`]).
    #[inline]
    pub fn device(&self, id: DeviceId) -> &Device {
        self.scenario.device(id)
    }

    /// Charger lookup (panics on foreign ids, same as [`Scenario::charger`]).
    #[inline]
    pub fn charger(&self, id: ChargerId) -> &Charger {
        self.scenario.charger(id)
    }

    /// Whether a group of this size is admissible.
    #[inline]
    pub fn group_size_ok(&self, size: usize) -> bool {
        size >= 1 && self.params.max_group_size.is_none_or(|cap| size <= cap)
    }

    /// Total energy demand of a member set.
    pub fn group_demand(&self, members: &[DeviceId]) -> Joules {
        members.iter().map(|&d| self.device(d).demand()).sum()
    }

    /// Whether one hire of `charger` can deliver the group's demand.
    pub fn charger_can_serve(&self, charger: ChargerId, members: &[DeviceId]) -> bool {
        self.charger(charger)
            .can_deliver(self.group_demand(members))
    }

    /// Whether the group is admissible at all: within the size cap and
    /// servable by at least one charger's energy budget.
    pub fn feasible_group(&self, members: &[DeviceId]) -> bool {
        self.group_size_ok(members.len())
            && self
                .scenario
                .chargers()
                .iter()
                .any(|c| c.can_deliver(self.group_demand(members)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccs_wrsn::scenario::ScenarioGenerator;

    fn scenario() -> Scenario {
        ScenarioGenerator::new(1).devices(6).chargers(3).generate()
    }

    #[test]
    fn default_params_are_valid() {
        let p = CcsProblem::new(scenario());
        assert_eq!(p.num_devices(), 6);
        assert_eq!(p.num_chargers(), 3);
        assert!(p.group_size_ok(1));
        assert!(p.group_size_ok(6));
        assert!(!p.group_size_ok(0));
    }

    #[test]
    fn group_size_cap_enforced() {
        let p = CcsProblem::with_params(
            scenario(),
            CostParams {
                max_group_size: Some(3),
                ..CostParams::default()
            },
        );
        assert!(p.group_size_ok(3));
        assert!(!p.group_size_ok(4));
    }

    #[test]
    #[should_panic(expected = "concave nondecreasing")]
    fn rejects_convex_congestion() {
        let _ = CcsProblem::with_params(
            scenario(),
            CostParams {
                congestion_curve: CardinalityCurve::Power(2.0),
                ..CostParams::default()
            },
        );
    }

    #[test]
    #[should_panic(expected = "max group size of zero")]
    fn rejects_zero_cap() {
        let _ = CcsProblem::with_params(
            scenario(),
            CostParams {
                max_group_size: Some(0),
                ..CostParams::default()
            },
        );
    }
}

#[cfg(test)]
mod budget_tests {
    use super::*;
    use ccs_wrsn::entities::{Charger, ChargerId, Device, DeviceId};
    use ccs_wrsn::geometry::Point;
    use ccs_wrsn::scenario::ScenarioGenerator;

    #[test]
    fn feasibility_respects_energy_budgets() {
        let field = ccs_wrsn::geometry::Rect::square(10.0);
        let dev = |i: u32, demand: f64| {
            Device::builder(DeviceId::new(i), Point::new(5.0, 5.0))
                .demand(Joules::new(demand))
                .build()
        };
        let charger = Charger::builder(ChargerId::new(0), Point::new(5.0, 5.0))
            .energy_budget(Joules::new(5_000.0))
            .build();
        let scenario = ccs_wrsn::scenario::Scenario::new(
            field,
            vec![dev(0, 3_000.0), dev(1, 3_000.0)],
            vec![charger],
        )
        .unwrap();
        let p = CcsProblem::new(scenario);
        // Singletons fit; the pair exceeds the single charger's budget.
        assert!(p.feasible_group(&[DeviceId::new(0)]));
        assert!(p.feasible_group(&[DeviceId::new(1)]));
        assert!(!p.feasible_group(&[DeviceId::new(0), DeviceId::new(1)]));
        assert!(!p.charger_can_serve(ChargerId::new(0), &[DeviceId::new(0), DeviceId::new(1)]));
        assert_eq!(
            p.group_demand(&[DeviceId::new(0), DeviceId::new(1)]),
            Joules::new(6_000.0)
        );
    }

    #[test]
    #[should_panic(expected = "no charger's energy budget covers it")]
    fn rejects_unservable_devices() {
        let field = ccs_wrsn::geometry::Rect::square(10.0);
        let dev = Device::builder(DeviceId::new(0), Point::new(5.0, 5.0))
            .demand(Joules::new(9_000.0))
            .build();
        let charger = Charger::builder(ChargerId::new(0), Point::new(5.0, 5.0))
            .energy_budget(Joules::new(1_000.0))
            .build();
        let scenario = ccs_wrsn::scenario::Scenario::new(field, vec![dev], vec![charger]).unwrap();
        let _ = CcsProblem::new(scenario);
    }

    #[test]
    fn unbudgeted_chargers_serve_anything() {
        let p = CcsProblem::new(ScenarioGenerator::new(1).devices(10).chargers(2).generate());
        let all: Vec<DeviceId> = p.scenario().device_ids().collect();
        assert!(p.feasible_group(&all));
    }
}
