//! Exclusive-charger scheduling: at most one hire per provider.
//!
//! The default CCS service model lets a provider serve several groups
//! sequentially. Some deployments forbid that (one dispatch per provider
//! per round); this module retrofits any schedule to that regime by
//! re-assigning groups to *distinct* chargers at minimum total group cost —
//! an assignment problem solved exactly by the Hungarian algorithm
//! implemented in [`hungarian`].
//!
//! The `abl_exclusive` experiment quantifies the price of exclusivity.

use crate::cost::evaluate_facility;
use crate::gathering::gathering_point;
use crate::problem::CcsProblem;
use crate::schedule::{GroupPlan, Schedule};
use crate::sharing::CostSharing;
use std::fmt;

/// Error from [`enforce_exclusivity`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExclusivityError {
    /// More groups than chargers: no injective assignment exists.
    NotEnoughChargers {
        /// Groups in the schedule.
        groups: usize,
        /// Chargers available.
        chargers: usize,
    },
}

impl fmt::Display for ExclusivityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExclusivityError::NotEnoughChargers { groups, chargers } => write!(
                f,
                "{groups} groups cannot be exclusively assigned to {chargers} chargers"
            ),
        }
    }
}

impl std::error::Error for ExclusivityError {}

/// Exact minimum-cost assignment for an `n × m` cost matrix (`n <= m`):
/// returns, for each row, the column it is assigned to, minimizing the
/// total cost. Runs the classic `O(n² m)` Hungarian algorithm with
/// potentials (the "shortest augmenting path" formulation).
///
/// # Panics
///
/// Panics if the matrix is empty, ragged, has more rows than columns, or
/// contains non-finite entries.
pub fn hungarian(cost: &[Vec<f64>]) -> Vec<usize> {
    let n = cost.len();
    assert!(n > 0, "empty assignment problem");
    let m = cost[0].len();
    assert!(
        cost.iter().all(|row| row.len() == m),
        "cost matrix is ragged"
    );
    assert!(n <= m, "more rows ({n}) than columns ({m})");
    assert!(
        cost.iter().flatten().all(|c| c.is_finite()),
        "costs must be finite"
    );

    // 1-indexed arrays per the classical formulation.
    let inf = f64::INFINITY;
    let mut u = vec![0.0; n + 1];
    let mut v = vec![0.0; m + 1];
    let mut way = vec![0usize; m + 1];
    // p[j] = row assigned to column j (0 = none).
    let mut p = vec![0usize; m + 1];

    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![inf; m + 1];
        let mut used = vec![false; m + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = inf;
            let mut j1 = 0usize;
            for j in 1..=m {
                if used[j] {
                    continue;
                }
                let cur = cost[i0 - 1][j - 1] - u[i0] - v[j];
                if cur < minv[j] {
                    minv[j] = cur;
                    way[j] = j0;
                }
                if minv[j] < delta {
                    delta = minv[j];
                    j1 = j;
                }
            }
            for j in 0..=m {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        // Augment along the alternating path.
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    let mut assignment = vec![usize::MAX; n];
    for j in 1..=m {
        if p[j] != 0 {
            assignment[p[j] - 1] = j - 1;
        }
    }
    debug_assert!(assignment.iter().all(|&a| a != usize::MAX));
    assignment
}

/// Re-assigns the groups of `schedule` to pairwise-distinct chargers at
/// minimum total group cost (group memberships are kept; each group's
/// gathering point is re-optimized for its new charger).
///
/// # Examples
///
/// ```
/// use ccs_core::prelude::*;
/// use ccs_wrsn::scenario::ScenarioGenerator;
///
/// let problem = CcsProblem::new(ScenarioGenerator::new(1).devices(8).chargers(6).generate());
/// let shared = ccsa(&problem, &EqualShare, CcsaOptions::default());
/// let exclusive = enforce_exclusivity(&problem, &shared, &EqualShare)?;
/// assert_eq!(exclusive.chargers_used(), exclusive.groups().len());
/// # Ok::<(), ccs_core::exclusive::ExclusivityError>(())
/// ```
///
/// # Errors
///
/// Returns [`ExclusivityError::NotEnoughChargers`] when the schedule has
/// more groups than the problem has chargers.
pub fn enforce_exclusivity(
    problem: &CcsProblem,
    schedule: &Schedule,
    sharing: &dyn CostSharing,
) -> Result<Schedule, ExclusivityError> {
    let groups = schedule.groups();
    let m = problem.num_chargers();
    if groups.len() > m {
        return Err(ExclusivityError::NotEnoughChargers {
            groups: groups.len(),
            chargers: m,
        });
    }

    // Price every (group, charger) pair at that charger's best point.
    let strategy = problem.params().gathering;
    let facilities: Vec<Vec<_>> = groups
        .iter()
        .map(|g| {
            problem
                .scenario()
                .charger_ids()
                .map(|c| {
                    let point = gathering_point(problem, c, &g.members, strategy);
                    evaluate_facility(problem, c, &g.members, point)
                })
                .collect()
        })
        .collect();
    // Budget-infeasible (group, charger) pairs get a huge-but-finite
    // penalty so the Hungarian algorithm avoids them whenever possible.
    const INFEASIBLE_PENALTY: f64 = 1e12;
    let cost: Vec<Vec<f64>> = groups
        .iter()
        .zip(&facilities)
        .map(|(g, row)| {
            row.iter()
                .map(|f| {
                    if problem.charger_can_serve(f.charger, &g.members) {
                        f.group_cost().value()
                    } else {
                        INFEASIBLE_PENALTY
                    }
                })
                .collect()
        })
        .collect();

    let assignment = hungarian(&cost);
    if assignment
        .iter()
        .enumerate()
        .any(|(gi, &j)| cost[gi][j] >= INFEASIBLE_PENALTY)
    {
        // Exclusivity + budgets admit no feasible injective assignment.
        return Err(ExclusivityError::NotEnoughChargers {
            groups: groups.len(),
            chargers: m,
        });
    }
    let plans = groups
        .iter()
        .enumerate()
        .map(|(gi, g)| {
            let chosen = facilities[gi][assignment[gi]].clone();
            GroupPlan::from_facility(problem, g.members.clone(), chosen, sharing)
        })
        .collect();

    let exclusive = Schedule::new(plans, "exclusive", sharing.name());
    debug_assert!(exclusive.validate(problem).is_ok());
    Ok(exclusive)
}

/// Number of distinct chargers hired by a schedule, as a fraction of its
/// groups — `1.0` means fully exclusive already.
pub fn exclusivity_ratio(schedule: &Schedule) -> f64 {
    if schedule.groups().is_empty() {
        return 1.0;
    }
    schedule.chargers_used() as f64 / schedule.groups().len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::{ccsa, noncooperation, CcsaOptions};
    use crate::sharing::EqualShare;
    use ccs_wrsn::scenario::ScenarioGenerator;
    use ccs_wrsn::units::Cost;

    #[test]
    fn hungarian_identity_matrix() {
        // Diagonal zeros: identity assignment.
        let cost = vec![
            vec![0.0, 9.0, 9.0],
            vec![9.0, 0.0, 9.0],
            vec![9.0, 9.0, 0.0],
        ];
        assert_eq!(hungarian(&cost), vec![0, 1, 2]);
    }

    #[test]
    fn hungarian_classic_3x3() {
        // A standard textbook instance: optimum is 1->2, 2->0, 3->1 (cost 5).
        let cost = vec![
            vec![4.0, 1.0, 3.0],
            vec![2.0, 0.0, 5.0],
            vec![3.0, 2.0, 2.0],
        ];
        let a = hungarian(&cost);
        let total: f64 = a.iter().enumerate().map(|(i, &j)| cost[i][j]).sum();
        assert_eq!(total, 5.0);
        let mut sorted = a.clone();
        sorted.sort();
        assert_eq!(sorted, vec![0, 1, 2], "assignment is a permutation");
    }

    #[test]
    fn hungarian_rectangular_picks_cheap_columns() {
        let cost = vec![vec![5.0, 1.0, 7.0, 3.0], vec![5.0, 2.0, 7.0, 1.0]];
        let a = hungarian(&cost);
        let total: f64 = a.iter().enumerate().map(|(i, &j)| cost[i][j]).sum();
        assert_eq!(total, 2.0, "rows take columns 1 and 3");
        assert_ne!(a[0], a[1]);
    }

    #[test]
    fn hungarian_matches_brute_force_randomized() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
        for _ in 0..30 {
            let n = rng.gen_range(1..=5);
            let m = rng.gen_range(n..=6);
            let cost: Vec<Vec<f64>> = (0..n)
                .map(|_| (0..m).map(|_| rng.gen_range(0.0..10.0)).collect())
                .collect();
            let a = hungarian(&cost);
            let total: f64 = a.iter().enumerate().map(|(i, &j)| cost[i][j]).sum();
            let best = brute_force_assignment(&cost);
            assert!(
                (total - best).abs() < 1e-9,
                "hungarian {total} vs brute {best} on {cost:?}"
            );
        }
    }

    fn brute_force_assignment(cost: &[Vec<f64>]) -> f64 {
        fn rec(cost: &[Vec<f64>], row: usize, used: &mut Vec<bool>) -> f64 {
            if row == cost.len() {
                return 0.0;
            }
            let mut best = f64::INFINITY;
            for j in 0..cost[0].len() {
                if !used[j] {
                    used[j] = true;
                    best = best.min(cost[row][j] + rec(cost, row + 1, used));
                    used[j] = false;
                }
            }
            best
        }
        rec(cost, 0, &mut vec![false; cost[0].len()])
    }

    #[test]
    #[should_panic(expected = "more rows")]
    fn hungarian_rejects_tall_matrices() {
        let _ = hungarian(&[vec![1.0], vec![2.0]]);
    }

    #[test]
    fn exclusivity_enforced_on_real_schedules() {
        let p = CcsProblem::new(ScenarioGenerator::new(5).devices(12).chargers(6).generate());
        let base = ccsa(&p, &EqualShare, CcsaOptions::default());
        let exclusive = enforce_exclusivity(&p, &base, &EqualShare).unwrap();
        exclusive.validate(&p).unwrap();
        assert_eq!(exclusive.groups().len(), base.groups().len());
        assert_eq!(
            exclusive.chargers_used(),
            exclusive.groups().len(),
            "every group gets its own charger"
        );
        assert_eq!(exclusivity_ratio(&exclusive), 1.0);
        // Exclusivity is a constraint: it can only cost more.
        assert!(exclusive.total_cost() >= base.total_cost() - Cost::new(1e-6));
    }

    #[test]
    fn too_many_groups_is_an_error() {
        let p = CcsProblem::new(ScenarioGenerator::new(5).devices(8).chargers(2).generate());
        let solo = noncooperation(&p, &EqualShare); // 8 groups, 2 chargers
        let err = enforce_exclusivity(&p, &solo, &EqualShare).unwrap_err();
        assert_eq!(
            err,
            ExclusivityError::NotEnoughChargers {
                groups: 8,
                chargers: 2
            }
        );
        assert!(err.to_string().contains("exclusively"));
    }
}
