//! The metrics registry: named counters, gauges, and timers.

use crate::hist::HistogramSnapshot;
use crate::report::{RunReport, TimerStats};
use crate::sink::EventSink;
use crate::span::Span;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

#[derive(Debug, Default)]
pub(crate) struct TimerData {
    pub(crate) count: u64,
    pub(crate) total_s: f64,
    pub(crate) min_s: f64,
    pub(crate) max_s: f64,
    /// Log-linear nanosecond buckets behind the percentiles — bounded
    /// memory at any sample count, ≤ 2^-5 relative quantile error
    /// (see [`crate::hist`]), allocated on first record.
    pub(crate) hist: Option<Box<HistogramSnapshot>>,
}

impl TimerData {
    fn record(&mut self, seconds: f64) {
        if self.count == 0 {
            self.min_s = seconds;
            self.max_s = seconds;
        } else {
            self.min_s = self.min_s.min(seconds);
            self.max_s = self.max_s.max(seconds);
        }
        self.count += 1;
        self.total_s += seconds;
        let ns = if seconds <= 0.0 {
            0
        } else {
            (seconds * 1e9).min(u64::MAX as f64) as u64
        };
        self.hist.get_or_insert_with(Box::default).record(ns);
    }

    pub(crate) fn stats(&self) -> TimerStats {
        // Quantiles come from the histogram (midpoint of the true rank
        // value's bucket); min/max/mean stay exact from the f64 track.
        let quantile_ms = |q: f64| -> f64 {
            let Some(hist) = self.hist.as_deref() else {
                return 0.0;
            };
            (hist.quantile(q) as f64 / 1e6).clamp(self.min_s * 1e3, self.max_s * 1e3)
        };
        TimerStats {
            count: self.count,
            total_ms: self.total_s * 1e3,
            min_ms: if self.count == 0 {
                0.0
            } else {
                self.min_s * 1e3
            },
            max_ms: self.max_s * 1e3,
            mean_ms: if self.count == 0 {
                0.0
            } else {
                self.total_s / self.count as f64 * 1e3
            },
            p50_ms: quantile_ms(0.50),
            p95_ms: quantile_ms(0.95),
            p99_ms: quantile_ms(0.99),
        }
    }
}

#[derive(Default)]
pub(crate) struct Tables {
    pub(crate) counters: BTreeMap<String, Arc<AtomicU64>>,
    pub(crate) gauges: BTreeMap<String, Arc<Mutex<f64>>>,
    pub(crate) timers: BTreeMap<String, Arc<Mutex<TimerData>>>,
    pub(crate) spans: BTreeMap<String, Arc<Mutex<TimerData>>>,
}

pub(crate) struct RegistryInner {
    pub(crate) enabled: AtomicBool,
    pub(crate) tables: Mutex<Tables>,
    pub(crate) sink: Mutex<Option<EventSink>>,
}

/// A concurrent registry of named metrics.
///
/// Cloning is cheap (an `Arc` bump) and all clones share state. Metric
/// handles ([`Counter`], [`Gauge`], [`Timer`]) stay valid for the life of
/// the registry and are meant to be hoisted out of hot loops.
#[derive(Clone)]
pub struct Registry {
    pub(crate) inner: Arc<RegistryInner>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// Creates a disabled registry.
    pub fn new() -> Self {
        Registry {
            inner: Arc::new(RegistryInner {
                enabled: AtomicBool::new(false),
                tables: Mutex::new(Tables::default()),
                sink: Mutex::new(None),
            }),
        }
    }

    /// Turns recording on.
    pub fn enable(&self) {
        self.inner.enabled.store(true, Ordering::Relaxed);
    }

    /// Turns recording off (handles keep working, recording becomes a
    /// no-op).
    pub fn disable(&self) {
        self.inner.enabled.store(false, Ordering::Relaxed);
    }

    /// Whether recording is on.
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Returns (registering on first use) the counter named `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let mut tables = self.inner.tables.lock();
        let cell = tables
            .counters
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicU64::new(0)))
            .clone();
        Counter {
            inner: self.inner.clone(),
            value: cell,
        }
    }

    /// Returns (registering on first use) the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut tables = self.inner.tables.lock();
        let cell = tables
            .gauges
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(Mutex::new(0.0)))
            .clone();
        Gauge {
            inner: self.inner.clone(),
            value: cell,
        }
    }

    /// Returns (registering on first use) the timer named `name`.
    pub fn timer(&self, name: &str) -> Timer {
        let mut tables = self.inner.tables.lock();
        let cell = tables.timers.entry(name.to_string()).or_default().clone();
        Timer {
            inner: self.inner.clone(),
            data: cell,
        }
    }

    /// Opens a hierarchical timing span named `name`; its wall-clock time
    /// is recorded when the returned guard drops, under a `/`-joined path
    /// of the spans enclosing it on this thread (`plan/greedy/round`).
    /// While the registry is disabled this is a no-op guard.
    pub fn span(&self, name: &str) -> Span {
        Span::open(self, name)
    }

    pub(crate) fn record_span(&self, path: &str, seconds: f64) {
        let cell = {
            let mut tables = self.inner.tables.lock();
            tables.spans.entry(path.to_string()).or_default().clone()
        };
        cell.lock().record(seconds);
    }

    /// Routes span events (and [`Registry::emit`] calls) to a JSONL sink.
    pub fn set_sink(&self, sink: EventSink) {
        *self.inner.sink.lock() = Some(sink);
    }

    /// Writes one event line to the sink, if one is attached and the
    /// registry is enabled. `fields` are merged into the event object.
    pub fn emit(&self, event: &str, fields: &[(&str, serde_json::Value)]) {
        if !self.is_enabled() {
            return;
        }
        if let Some(sink) = self.inner.sink.lock().as_ref() {
            sink.write_event(event, fields);
        }
    }

    /// Snapshots every metric into a serializable report, including the
    /// flat self-time profile derived from the span tree.
    pub fn report(&self) -> RunReport {
        let tables = self.inner.tables.lock();
        let mut report = RunReport {
            counters: tables
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
                .collect(),
            gauges: tables
                .gauges
                .iter()
                .map(|(k, v)| (k.clone(), *v.lock()))
                .collect(),
            timers: tables
                .timers
                .iter()
                .map(|(k, v)| (k.clone(), v.lock().stats()))
                .collect(),
            profile: Vec::new(),
            spans: tables
                .spans
                .iter()
                .map(|(k, v)| (k.clone(), v.lock().stats()))
                .collect(),
        };
        report.profile = crate::report::flat_profile(&report.spans);
        report
    }

    /// Resets every metric to zero (the registrations survive, so hoisted
    /// handles remain valid). Useful between experiment repetitions.
    pub fn reset(&self) {
        let tables = self.inner.tables.lock();
        for v in tables.counters.values() {
            v.store(0, Ordering::Relaxed);
        }
        for v in tables.gauges.values() {
            *v.lock() = 0.0;
        }
        for v in tables.timers.values() {
            *v.lock() = TimerData::default();
        }
        for v in tables.spans.values() {
            *v.lock() = TimerData::default();
        }
    }
}

/// Monotonic event counter handle.
#[derive(Clone)]
pub struct Counter {
    inner: Arc<RegistryInner>,
    value: Arc<AtomicU64>,
}

impl Counter {
    /// Adds `n`; a relaxed load plus branch while disabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if self.inner.enabled.load(Ordering::Relaxed) {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Last-write-wins numeric gauge handle.
#[derive(Clone)]
pub struct Gauge {
    inner: Arc<RegistryInner>,
    value: Arc<Mutex<f64>>,
}

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, value: f64) {
        if self.inner.enabled.load(Ordering::Relaxed) {
            *self.value.lock() = value;
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        *self.value.lock()
    }
}

/// Wall-clock duration accumulator handle.
#[derive(Clone)]
pub struct Timer {
    inner: Arc<RegistryInner>,
    data: Arc<Mutex<TimerData>>,
}

impl Timer {
    /// Records one observed duration.
    #[inline]
    pub fn record(&self, duration: Duration) {
        if self.inner.enabled.load(Ordering::Relaxed) {
            self.data.lock().record(duration.as_secs_f64());
        }
    }

    /// Records one observed duration given in seconds.
    #[inline]
    pub fn record_secs(&self, seconds: f64) {
        if self.inner.enabled.load(Ordering::Relaxed) {
            self.data.lock().record(seconds);
        }
    }

    /// Times `f`, records its wall-clock duration, and returns its output.
    /// Skips the clock entirely while disabled.
    #[inline]
    pub fn time<T>(&self, f: impl FnOnce() -> T) -> T {
        if !self.inner.enabled.load(Ordering::Relaxed) {
            return f();
        }
        let start = std::time::Instant::now();
        let out = f();
        self.data.lock().record(start.elapsed().as_secs_f64());
        out
    }
}
