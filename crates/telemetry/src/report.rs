//! Serializable snapshot of a registry.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Aggregated statistics of one timer or span (milliseconds).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimerStats {
    /// Number of recorded observations.
    pub count: u64,
    /// Sum of all observations.
    pub total_ms: f64,
    /// Smallest observation (0 when empty).
    pub min_ms: f64,
    /// Largest observation (0 when empty).
    pub max_ms: f64,
    /// Arithmetic mean (0 when empty).
    pub mean_ms: f64,
    /// Median over the retained sample reservoir.
    pub p50_ms: f64,
    /// 95th percentile over the retained sample reservoir.
    pub p95_ms: f64,
}

/// Point-in-time snapshot of every metric in a registry, produced by
/// [`crate::Registry::report`] and written by the CLI `--report` flag.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Monotonic counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Last-written gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Explicit timers by name.
    pub timers: BTreeMap<String, TimerStats>,
    /// RAII span timings by `/`-joined hierarchical path.
    pub spans: BTreeMap<String, TimerStats>,
}

impl RunReport {
    /// Counter value, or 0 if never registered.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Renders the report as pretty-printed JSON.
    pub fn to_json_pretty(&self) -> String {
        serde_json::to_string_pretty(self).expect("RunReport serialization is infallible")
    }
}
