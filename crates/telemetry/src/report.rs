//! Serializable snapshot of a registry.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Aggregated statistics of one timer or span (milliseconds).
///
/// `count`/`total`/`min`/`max`/`mean` are exact; the percentiles come
/// from the log-linear histogram backend ([`crate::hist`]) and carry at
/// most 2^-5 ≈ 3.1% relative error.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimerStats {
    /// Number of recorded observations.
    pub count: u64,
    /// Sum of all observations.
    pub total_ms: f64,
    /// Smallest observation (0 when empty).
    pub min_ms: f64,
    /// Largest observation (0 when empty).
    pub max_ms: f64,
    /// Arithmetic mean (0 when empty).
    pub mean_ms: f64,
    /// Median (histogram-backed).
    pub p50_ms: f64,
    /// 95th percentile (histogram-backed).
    pub p95_ms: f64,
    /// 99th percentile (histogram-backed).
    pub p99_ms: f64,
}

/// One row of the flat self-time profile derived from the span tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfileRow {
    /// Leaf span name (the last `/` segment, aggregated across paths).
    pub name: String,
    /// Times a span with this leaf name closed.
    pub count: u64,
    /// Self time: wall-clock inside this span minus its child spans.
    pub self_ms: f64,
    /// Share of the run's total self time, in percent.
    pub pct: f64,
}

/// Point-in-time snapshot of every metric in a registry, produced by
/// [`crate::Registry::report`] and written by the CLI `--report` flag.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Monotonic counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Last-written gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Explicit timers by name.
    pub timers: BTreeMap<String, TimerStats>,
    /// RAII span timings by `/`-joined hierarchical path.
    pub spans: BTreeMap<String, TimerStats>,
    /// Flat self-time profile over the span tree, largest first — the
    /// self-profile table ("where did the wall clock actually go").
    pub profile: Vec<ProfileRow>,
}

impl RunReport {
    /// Counter value, or 0 if never registered.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Renders the report as pretty-printed JSON.
    pub fn to_json_pretty(&self) -> String {
        serde_json::to_string_pretty(self).expect("RunReport serialization is infallible")
    }

    /// Renders the flat profile as an aligned text table (empty string
    /// when no spans were recorded).
    pub fn profile_table(&self) -> String {
        if self.profile.is_empty() {
            return String::new();
        }
        let mut out = String::from("  self ms      %   count  span\n");
        for row in &self.profile {
            out.push_str(&format!(
                "{:>9.2} {:>5.1}% {:>7}  {}\n",
                row.self_ms, row.pct, row.count, row.name
            ));
        }
        out
    }
}

/// Builds the flat self-time profile from the hierarchical span stats:
/// each path's self time is its total minus its direct children's totals,
/// aggregated by leaf name and sorted by self time, largest first.
pub(crate) fn flat_profile(spans: &BTreeMap<String, TimerStats>) -> Vec<ProfileRow> {
    let mut rows: BTreeMap<&str, (u64, f64)> = BTreeMap::new();
    for (path, stats) in spans {
        let children_total: f64 = spans
            .iter()
            .filter(|(p, _)| {
                p.strip_prefix(path.as_str())
                    .and_then(|rest| rest.strip_prefix('/'))
                    .is_some_and(|rest| !rest.contains('/'))
            })
            .map(|(_, s)| s.total_ms)
            .sum();
        let self_ms = (stats.total_ms - children_total).max(0.0);
        let leaf = path.rsplit('/').next().unwrap_or(path);
        let entry = rows.entry(leaf).or_insert((0, 0.0));
        entry.0 += stats.count;
        entry.1 += self_ms;
    }
    let grand_total: f64 = rows.values().map(|(_, ms)| ms).sum();
    let mut profile: Vec<ProfileRow> = rows
        .into_iter()
        .map(|(name, (count, self_ms))| ProfileRow {
            name: name.to_string(),
            count,
            self_ms,
            pct: if grand_total > 0.0 {
                self_ms / grand_total * 100.0
            } else {
                0.0
            },
        })
        .collect();
    profile.sort_by(|a, b| {
        b.self_ms
            .partial_cmp(&a.self_ms)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.name.cmp(&b.name))
    });
    profile
}
