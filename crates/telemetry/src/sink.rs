//! Line-delimited JSON event sink.

use parking_lot::Mutex;
use serde_json::{Number, Value};
use std::collections::BTreeMap;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::time::Instant;

/// Appends one JSON object per event to a writer (typically a file opened
/// via [`EventSink::create`]). Every line carries the event name and a
/// monotonic `t_ms` timestamp relative to sink creation.
pub struct EventSink {
    writer: Mutex<BufWriter<Box<dyn Write + Send>>>,
    epoch: Instant,
}

impl EventSink {
    /// Creates (truncating) the JSONL file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying file-creation error.
    pub fn create(path: impl AsRef<Path>) -> io::Result<EventSink> {
        let file = File::create(path)?;
        Ok(EventSink::from_writer(Box::new(file)))
    }

    /// Wraps an arbitrary writer (used by tests to capture events).
    pub fn from_writer(writer: Box<dyn Write + Send>) -> EventSink {
        EventSink {
            writer: Mutex::new(BufWriter::new(writer)),
            epoch: Instant::now(),
        }
    }

    pub(crate) fn write_event(&self, event: &str, fields: &[(&str, Value)]) {
        let mut object = BTreeMap::new();
        object.insert("event".to_string(), Value::String(event.to_string()));
        object.insert(
            "t_ms".to_string(),
            Value::Number(Number::Float(self.epoch.elapsed().as_secs_f64() * 1e3)),
        );
        for (key, value) in fields {
            object.insert((*key).to_string(), value.clone());
        }
        let line = serde_json::to_string(&Value::Object(object))
            .expect("Value serialization is infallible");
        let mut writer = self.writer.lock();
        // Telemetry must never take down the run it observes; drop the
        // line on I/O failure.
        let _ = writeln!(writer, "{line}");
        let _ = writer.flush();
    }
}
