//! Size-capped, self-rotating JSONL file writer.
//!
//! Request tracing on a long-running daemon must not fill the disk: the
//! writer tracks how many bytes it has written and, before a line would
//! push the active file past the cap, rotates — the current file is
//! renamed to `<path>.1` (replacing any previous rotation) and a fresh
//! file is started. At most `2 × max_bytes` ever exist on disk.
//!
//! Writing never fails the caller: tracing observes the process, it must
//! not take it down, so I/O errors drop the line (mirroring
//! [`crate::sink::EventSink`]).

use parking_lot::Mutex;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::PathBuf;

struct State {
    writer: BufWriter<File>,
    written: u64,
}

/// A line-oriented file writer that rotates itself at a byte cap.
pub struct RotatingWriter {
    path: PathBuf,
    max_bytes: u64,
    state: Mutex<State>,
}

impl RotatingWriter {
    /// Creates (truncating) the file at `path`, rotating whenever the
    /// active file would exceed `max_bytes` (clamped to at least 4 KiB so
    /// a tiny cap cannot rotate on every line).
    ///
    /// # Errors
    ///
    /// Propagates the underlying file-creation error.
    pub fn create(path: impl Into<PathBuf>, max_bytes: u64) -> io::Result<RotatingWriter> {
        let path = path.into();
        let file = File::create(&path)?;
        Ok(RotatingWriter {
            path,
            max_bytes: max_bytes.max(4096),
            state: Mutex::new(State {
                writer: BufWriter::new(file),
                written: 0,
            }),
        })
    }

    /// The path rotated-out data is moved to (`<path>.1`).
    pub fn rotated_path(&self) -> PathBuf {
        let mut name = self.path.as_os_str().to_owned();
        name.push(".1");
        PathBuf::from(name)
    }

    /// Appends one line (a newline is added), rotating first if the line
    /// would push the active file past the cap. I/O failures drop the
    /// line silently — tracing must never take down the traced process.
    pub fn write_line(&self, line: &str) {
        let mut state = self.state.lock();
        let len = line.len() as u64 + 1;
        if state.written > 0 && state.written + len > self.max_bytes {
            let _ = state.writer.flush();
            let _ = std::fs::rename(&self.path, self.rotated_path());
            match File::create(&self.path) {
                Ok(file) => {
                    state.writer = BufWriter::new(file);
                    state.written = 0;
                }
                Err(_) => return,
            }
        }
        if writeln!(state.writer, "{line}").is_ok() {
            state.written += len;
        }
        let _ = state.writer.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rotates_at_the_byte_cap_and_keeps_both_files_bounded() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("ccs-rotate-test-{}.jsonl", std::process::id()));
        let writer = RotatingWriter::create(&path, 4096).expect("create");
        let line = "x".repeat(100);
        for _ in 0..100 {
            writer.write_line(&line); // 101 bytes/line ⇒ > 2 caps of data
        }
        let active = std::fs::metadata(&path).expect("active file").len();
        let rotated = std::fs::metadata(writer.rotated_path())
            .expect("rotated file exists")
            .len();
        assert!(active <= 4096, "active file within cap, got {active}");
        assert!(rotated <= 4096, "rotated file within cap, got {rotated}");
        assert!(rotated > 0, "rotation moved data");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(writer.rotated_path());
    }

    #[test]
    fn single_oversized_line_still_lands() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("ccs-rotate-big-{}.jsonl", std::process::id()));
        let writer = RotatingWriter::create(&path, 4096).expect("create");
        let line = "y".repeat(10_000);
        writer.write_line(&line);
        assert_eq!(
            std::fs::metadata(&path).expect("file").len(),
            10_001,
            "an oversized first line is written, not dropped"
        );
        let _ = std::fs::remove_file(&path);
    }
}
