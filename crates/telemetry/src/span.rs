//! Hierarchical RAII timing spans.

use crate::registry::Registry;
use serde_json::Value;
use std::cell::RefCell;
use std::time::Instant;

thread_local! {
    /// Stack of open span names on this thread; joined with `/` it forms
    /// the path new spans record under.
    static SPAN_PATH: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// Guard that measures the wall-clock time between its creation and drop
/// and records it under the span's hierarchical path. Obtained from
/// [`Registry::span`]; a no-op when the registry is disabled.
pub struct Span {
    state: Option<SpanState>,
}

struct SpanState {
    registry: Registry,
    path: String,
    start: Instant,
}

impl Span {
    pub(crate) fn open(registry: &Registry, name: &str) -> Span {
        if !registry.is_enabled() {
            return Span { state: None };
        }
        let path = SPAN_PATH.with(|stack| {
            let mut stack = stack.borrow_mut();
            let path = if stack.is_empty() {
                name.to_string()
            } else {
                format!("{}/{}", stack.join("/"), name)
            };
            stack.push(name.to_string());
            path
        });
        Span {
            state: Some(SpanState {
                registry: registry.clone(),
                path,
                start: Instant::now(),
            }),
        }
    }

    /// The `/`-joined path this span records under, if active.
    pub fn path(&self) -> Option<&str> {
        self.state.as_ref().map(|s| s.path.as_str())
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(state) = self.state.take() {
            let seconds = state.start.elapsed().as_secs_f64();
            SPAN_PATH.with(|stack| {
                stack.borrow_mut().pop();
            });
            state.registry.record_span(&state.path, seconds);
            state.registry.emit(
                "span",
                &[
                    ("path", Value::String(state.path.clone())),
                    (
                        "dur_ms",
                        serde_json::Value::Number(serde_json::Number::Float(seconds * 1e3)),
                    ),
                ],
            );
        }
    }
}
