//! Labeled metric families: per-label counters and histograms with a hard
//! cardinality cap.
//!
//! The gateway needs per-tenant counters and latency histograms, but the
//! tenant label comes from a client-controlled header — unbounded label
//! cardinality would let a hostile client grow the metric map without
//! limit. A [`Family`] therefore caps distinct labels: once the cap is
//! reached, new labels share the reserved [`OTHER_LABEL`] slot, so totals
//! stay correct while memory stays bounded.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// The reserved overflow label receiving all values past the cap.
pub const OTHER_LABEL: &str = "__other";

/// Default cap on distinct labels per family.
pub const DEFAULT_MAX_LABELS: usize = 1024;

/// A family of metrics keyed by a label string (e.g. a tenant name), with
/// a hard cardinality cap. `get` creates the labeled metric on demand;
/// past the cap, unknown labels fold into [`OTHER_LABEL`].
pub struct Family<T: Default> {
    inner: Mutex<BTreeMap<String, Arc<T>>>,
    max_labels: usize,
}

impl<T: Default> Family<T> {
    /// A family holding at most `max_labels` distinct labels (clamped to
    /// at least 1, not counting the overflow slot).
    pub fn new(max_labels: usize) -> Self {
        Family {
            inner: Mutex::new(BTreeMap::new()),
            max_labels: max_labels.max(1),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, Arc<T>>> {
        // Poison-tolerant: the map is only ever inserted into.
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// The metric for `label`, created on demand. Past the cap, the shared
    /// [`OTHER_LABEL`] metric.
    pub fn get(&self, label: &str) -> Arc<T> {
        let mut map = self.lock();
        if let Some(existing) = map.get(label) {
            return Arc::clone(existing);
        }
        let key = if map.len() < self.max_labels {
            label.to_string()
        } else {
            OTHER_LABEL.to_string()
        };
        Arc::clone(map.entry(key).or_default())
    }

    /// Number of distinct labels currently held (including the overflow
    /// slot once it exists).
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether no labels have been created yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All `(label, metric)` pairs, sorted by label.
    pub fn snapshot(&self) -> Vec<(String, Arc<T>)> {
        self.lock()
            .iter()
            .map(|(k, v)| (k.clone(), Arc::clone(v)))
            .collect()
    }
}

impl<T: Default> Default for Family<T> {
    fn default() -> Self {
        Self::new(DEFAULT_MAX_LABELS)
    }
}

/// A plain atomic counter for use inside a [`Family`] — unlike
/// [`crate::Counter`] it has no enable gate or registry, because family
/// metrics (per-tenant request counts) must always record.
#[derive(Default)]
pub struct FamilyCounter(AtomicU64);

impl FamilyCounter {
    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1.
    pub fn incr(&self) {
        self.add(1);
    }

    /// The current count.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Per-label always-on counters (e.g. requests per tenant).
pub type CounterFamily = Family<FamilyCounter>;

/// Per-label latency histograms (e.g. gateway phase timings per route).
pub type HistogramFamily = Family<crate::Histogram>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_created_on_demand_and_shared() {
        let family = CounterFamily::new(8);
        family.get("a").incr();
        family.get("a").add(2);
        family.get("b").incr();
        assert_eq!(family.get("a").get(), 3);
        assert_eq!(family.get("b").get(), 1);
        assert_eq!(family.len(), 2);
    }

    #[test]
    fn cardinality_is_capped_at_the_overflow_label() {
        let family = CounterFamily::new(2);
        family.get("a").incr();
        family.get("b").incr();
        family.get("c").incr();
        family.get("d").incr();
        assert_eq!(family.len(), 3, "a, b, and __other");
        assert_eq!(family.get(OTHER_LABEL).get(), 2, "c and d folded");
        let labels: Vec<String> = family.snapshot().into_iter().map(|(l, _)| l).collect();
        assert_eq!(labels, vec!["__other", "a", "b"]);
    }

    #[test]
    fn histogram_families_record_per_label() {
        let family = HistogramFamily::new(4);
        family.get("plan").record(100);
        family.get("plan").record(300);
        family.get("stats").record(5);
        assert_eq!(family.get("plan").snapshot().count, 2);
        assert_eq!(family.get("stats").snapshot().count, 1);
    }
}
