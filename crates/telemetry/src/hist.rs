//! Dependency-free log-linear (HDR-style) latency histograms.
//!
//! Values are recorded as non-negative integers (nanoseconds by
//! convention) into fixed log-linear buckets: values below 2^SUB_BITS are
//! counted exactly, and every power-of-two range above is split into
//! 2^SUB_BITS linear sub-buckets. With `SUB_BITS = 5` a bucket spans at
//! most 1/32 ≈ 3.1% of its lower bound, so any quantile estimate lands in
//! the same bucket as the true rank value — bounded relative error at a
//! fixed 15 KiB of memory per shard, no allocation on the record path.
//!
//! Two types share the bucket math:
//!
//! * [`Histogram`] — the concurrent handle: per-shard atomic bucket
//!   arrays (threads spread over shards to avoid cache-line contention),
//!   merged on [`Histogram::snapshot`]. Recording is wait-free: three
//!   relaxed `fetch_add`s plus two `fetch_min`/`fetch_max`.
//! * [`HistogramSnapshot`] — the plain owned form: recordable,
//!   mergeable (exact: bucket counts add), and queryable
//!   ([`HistogramSnapshot::quantile`]). This is what crosses thread and
//!   serialization boundaries.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Linear sub-bucket resolution: 2^SUB_BITS sub-buckets per power of two.
pub const SUB_BITS: u32 = 5;
const SUB: u64 = 1 << SUB_BITS;
/// Total bucket count: one exact group for values `< 2^SUB_BITS`, then one
/// group of `2^SUB_BITS` sub-buckets per remaining power of two of `u64`.
pub const NUM_BUCKETS: usize = ((64 - SUB_BITS as usize) + 1) << SUB_BITS;

/// Shards of the concurrent histogram; threads hash over them.
const SHARDS: usize = 8;

/// The bucket a value falls into. Monotone in `v`; exact for `v < 32`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < SUB {
        return v as usize;
    }
    let msb = 63 - u64::from(v.leading_zeros());
    let shift = msb - u64::from(SUB_BITS);
    let group = (msb - u64::from(SUB_BITS) + 1) as usize;
    (group << SUB_BITS) + ((v >> shift) & (SUB - 1)) as usize
}

/// The inclusive lower bound and width of bucket `index`. The width of the
/// topmost bucket nominally overflows `u64`; it is saturated, which only
/// widens the reported midpoint of values near `u64::MAX`.
fn bucket_bounds(index: usize) -> (u64, u64) {
    let group = index >> SUB_BITS;
    if group == 0 {
        return (index as u64, 1);
    }
    let shift = (group - 1) as u32;
    let lo = (SUB + (index as u64 & (SUB - 1))) << shift;
    (lo, 1u64.checked_shl(shift).unwrap_or(u64::MAX))
}

struct Shard {
    counts: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Shard {
    fn new() -> Self {
        Shard {
            counts: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// Which shard this thread records into: assigned round-robin on first
/// use, so a fixed worker pool spreads evenly regardless of thread ids.
fn shard_index() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SHARD: usize = NEXT.fetch_add(1, Ordering::Relaxed) % SHARDS;
    }
    SHARD.with(|s| *s)
}

/// A concurrent log-linear histogram of non-negative integer samples
/// (nanoseconds by convention).
///
/// Always on — unlike the registry's counters there is no enabled gate,
/// because the owner (e.g. the serve stack) decides at construction time
/// whether to keep one at all. Recording never locks and never allocates.
pub struct Histogram {
    shards: Vec<Shard>,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            shards: (0..SHARDS).map(|_| Shard::new()).collect(),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        let shard = &self.shards[shard_index()];
        shard.counts[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        shard.count.fetch_add(1, Ordering::Relaxed);
        // Saturating: a sum overflow (≈ 585 years of accumulated
        // nanoseconds) must not wrap the mean into nonsense.
        let mut sum = shard.sum.load(Ordering::Relaxed);
        loop {
            let next = sum.saturating_add(value);
            match shard
                .sum
                .compare_exchange_weak(sum, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(actual) => sum = actual,
            }
        }
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records a [`std::time::Duration`] in nanoseconds (saturating —
    /// a 585-year request is off the chart anyway).
    #[inline]
    pub fn record_duration(&self, duration: std::time::Duration) {
        self.record(u64::try_from(duration.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Total samples recorded (racy snapshot).
    pub fn count(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.count.load(Ordering::Relaxed))
            .sum()
    }

    /// Merges every shard into one owned, queryable snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut out = HistogramSnapshot::new();
        for shard in &self.shards {
            for (i, c) in shard.counts.iter().enumerate() {
                out.buckets[i] += c.load(Ordering::Relaxed);
            }
            out.count += shard.count.load(Ordering::Relaxed);
            out.sum = out.sum.saturating_add(shard.sum.load(Ordering::Relaxed));
        }
        if out.count > 0 {
            out.min = self.min.load(Ordering::Relaxed);
            out.max = self.max.load(Ordering::Relaxed);
        }
        out
    }
}

/// The owned form of a histogram: plain bucket counts, recordable without
/// atomics (for single-writer call sites like the registry's timers),
/// mergeable, and queryable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    /// Total samples.
    pub count: u64,
    /// Saturating sum of all samples.
    pub sum: u64,
    /// Exact smallest sample (0 when empty).
    pub min: u64,
    /// Exact largest sample (0 when empty).
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self::new()
    }
}

impl HistogramSnapshot {
    /// An empty snapshot.
    pub fn new() -> Self {
        HistogramSnapshot {
            buckets: vec![0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
        }
    }

    /// Records one sample (single-writer path; use [`Histogram`] for
    /// concurrent recording).
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_index(value)] += 1;
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// The exact pointwise merge of two snapshots (bucket counts add, so
    /// merging is associative and commutative — proptested).
    #[must_use]
    pub fn merge(&self, other: &Self) -> Self {
        let mut out = self.clone();
        for (a, b) in out.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        out.sum = out.sum.saturating_add(other.sum);
        match (out.count > 0, other.count > 0) {
            (true, true) => {
                out.min = out.min.min(other.min);
                out.max = out.max.max(other.max);
            }
            (false, true) => {
                out.min = other.min;
                out.max = other.max;
            }
            _ => {}
        }
        out.count += other.count;
        out
    }

    /// The arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `q ∈ [0, 1]`: the midpoint of the bucket
    /// holding the sample of rank `⌈q·count⌉`, clamped into the exact
    /// observed `[min, max]`. Within `2^-SUB_BITS` relative error of the
    /// true rank value; 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        // The extreme ranks are tracked exactly — answer without the
        // bucket walk so p0/p100 are never off by a bucket width.
        if rank == 1 {
            return self.min;
        }
        if rank == self.count {
            return self.max;
        }
        let mut seen = 0u64;
        for (i, c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let (lo, width) = bucket_bounds(i);
                let mid = lo.saturating_add(width / 2);
                return mid.clamp(self.min, self.max);
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotone_and_cover_u64() {
        let mut last = 0usize;
        for v in [
            0u64,
            1,
            31,
            32,
            33,
            63,
            64,
            100,
            1 << 20,
            (1 << 20) + 12345,
            u64::MAX / 2,
            u64::MAX,
        ] {
            let b = bucket_index(v);
            assert!(b >= last, "bucket index must be monotone in the value");
            assert!(b < NUM_BUCKETS);
            let (lo, width) = bucket_bounds(b);
            assert!(lo <= v, "lower bound {lo} > value {v}");
            assert!(
                width == u64::MAX || v - lo < width,
                "value {v} outside bucket [{lo}, {lo}+{width})"
            );
            last = b;
        }
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = HistogramSnapshot::new();
        for v in 0..SUB {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), SUB - 1);
        assert_eq!(h.count, SUB);
        assert_eq!(h.sum, (0..SUB).sum::<u64>());
    }

    #[test]
    fn concurrent_recording_is_exact_in_count() {
        let h = Histogram::new();
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let h = &h;
                scope.spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 1_000 + i);
                    }
                });
            }
        });
        let snap = h.snapshot();
        assert_eq!(snap.count, 80_000);
        assert_eq!(snap.min, 0);
        assert_eq!(snap.max, 7 * 1_000 + 9_999);
    }
}
