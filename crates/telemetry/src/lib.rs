//! # ccs-telemetry
//!
//! Observability substrate for the CCS scheduling stack: named counters,
//! gauges, and wall-clock timers collected in a [`Registry`], hierarchical
//! RAII [`Span`]s, an optional JSONL event [`sink`], a serializable
//! [`RunReport`] snapshot (with a flat self-time profile), log-linear
//! latency [`hist`]ograms (bounded memory, ≤ 3.1% quantile error,
//! shard-merged across threads), and a size-capped [`rotate`]-on-write
//! JSONL writer for request tracing.
//!
//! ## Zero-dependency design
//!
//! This crate deliberately uses nothing beyond `std` and the three
//! dependencies the workspace already declares (`parking_lot`, `serde`,
//! `serde_json`). The build environment has no registry access, and the
//! instrumented crates sit on every hot path of the scheduler — pulling a
//! full metrics framework (`metrics`, `tracing`, `prometheus`) would add
//! compile-time and runtime weight for features (exporters, dynamic
//! subscribers, label sets) the experiments never use. A `BTreeMap` of
//! atomics behind one short-lived lock covers the whole need.
//!
//! ## Cost model
//!
//! Telemetry is **disabled by default** and the disabled path is designed
//! to be unmeasurable in benchmarks:
//!
//! * [`Counter::add`] is one relaxed atomic load (the shared enabled flag)
//!   and a predictable branch; no atomic RMW happens while disabled.
//! * [`Registry::span`] and [`Registry::timer`]-based recording skip the
//!   clock read entirely while disabled.
//! * Handle creation ([`Registry::counter`]) takes the registry lock once;
//!   hot loops hoist handles outside the loop and pay only the atomic
//!   increment per iteration when enabled.
//!
//! ## Usage
//!
//! ```
//! use ccs_telemetry::Registry;
//!
//! let registry = Registry::new();
//! registry.enable();
//!
//! let oracle = registry.counter("sfm.oracle_evals");
//! {
//!     let _span = registry.span("plan");
//!     for _ in 0..100 {
//!         oracle.incr();
//!     }
//! }
//!
//! let report = registry.report();
//! assert_eq!(report.counters["sfm.oracle_evals"], 100);
//! assert_eq!(report.spans["plan"].count, 1);
//! ```
//!
//! Library crates instrument against the process-wide [`global`] registry;
//! binaries opt in by calling `global().enable()` (the `--report` /
//! `--trace-json` CLI flags do exactly that) and snapshot it at exit.

pub mod family;
pub mod hist;
mod registry;
mod report;
pub mod rotate;
pub mod sink;
mod span;

pub use family::{CounterFamily, Family, FamilyCounter, HistogramFamily};
pub use hist::{Histogram, HistogramSnapshot};
pub use registry::{Counter, Gauge, Registry, Timer};
pub use report::{ProfileRow, RunReport, TimerStats};
pub use rotate::RotatingWriter;
pub use span::Span;

use std::sync::OnceLock;

/// Returns the process-wide registry all library instrumentation records
/// into. Disabled until a surface (CLI flag, bench harness, test) calls
/// [`Registry::enable`] on it.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Expands to a `&'static Counter` on the [`global`] registry, registered
/// once per call site. The idiomatic way to instrument a hot path:
///
/// ```
/// let evals = ccs_telemetry::counter!("sfm.oracle_evals");
/// for _ in 0..10 {
///     evals.incr(); // one relaxed atomic load while disabled
/// }
/// ```
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static CELL: ::std::sync::OnceLock<$crate::Counter> = ::std::sync::OnceLock::new();
        CELL.get_or_init(|| $crate::global().counter($name))
    }};
}

/// Expands to a `&'static Timer` on the [`global`] registry, registered
/// once per call site.
#[macro_export]
macro_rules! timer {
    ($name:expr) => {{
        static CELL: ::std::sync::OnceLock<$crate::Timer> = ::std::sync::OnceLock::new();
        CELL.get_or_init(|| $crate::global().timer($name))
    }};
}

/// Opens a hierarchical RAII span on the [`global`] registry; bind it to a
/// local (`let _span = ccs_telemetry::span!("greedy");`) so it drops at
/// scope exit.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::global().span($name)
    };
}
