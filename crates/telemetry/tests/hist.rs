//! Property tests of the log-linear histogram against a sorted-vector
//! oracle: quantile error bounds, exact counts, merge associativity, and
//! the zero/overflow edge buckets.

use ccs_telemetry::hist::{bucket_index, Histogram, HistogramSnapshot, NUM_BUCKETS, SUB_BITS};
use proptest::prelude::*;

/// Samples spanning every magnitude class: exact small values, mid-range
/// latencies, and the huge values that stress the top buckets.
fn arb_sample() -> impl Strategy<Value = u64> {
    prop_oneof![
        0u64..64,
        1_000u64..1_000_000,
        1_000_000u64..10_000_000_000,
        (u64::MAX - 1_000_000)..=u64::MAX,
    ]
}

/// The oracle: value of rank ⌈q·n⌉ (1-based) in the sorted samples —
/// the same rank [`HistogramSnapshot::quantile`] targets.
fn oracle_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn snapshot_of(samples: &[u64]) -> HistogramSnapshot {
    let mut snap = HistogramSnapshot::new();
    for &s in samples {
        snap.record(s);
    }
    snap
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn quantiles_stay_within_the_log_linear_error_bound(
        samples in proptest::collection::vec(arb_sample(), 1..400),
        q in 0.0f64..=1.0,
    ) {
        let hist = Histogram::new();
        for &s in &samples {
            hist.record(s);
        }
        let snap = hist.snapshot();
        let mut sorted = samples.clone();
        sorted.sort_unstable();

        prop_assert_eq!(snap.count, samples.len() as u64);
        prop_assert_eq!(snap.min, sorted[0]);
        prop_assert_eq!(snap.max, *sorted.last().unwrap());

        let oracle = oracle_quantile(&sorted, q);
        let got = snap.quantile(q);
        // The estimate is the midpoint of the oracle's bucket (clamped to
        // the observed [min, max]), and a bucket spans ≤ 2^-SUB_BITS of
        // its lower bound — so the estimate is within one bucket width.
        let bound = (oracle >> SUB_BITS).max(1);
        prop_assert!(
            got.abs_diff(oracle) <= bound,
            "quantile({}) = {} drifted from oracle {} by more than {}",
            q, got, oracle, bound
        );
    }

    #[test]
    fn merge_is_associative_commutative_and_exact(
        a in proptest::collection::vec(arb_sample(), 0..120),
        b in proptest::collection::vec(arb_sample(), 0..120),
        c in proptest::collection::vec(arb_sample(), 0..120),
    ) {
        let (sa, sb, sc) = (snapshot_of(&a), snapshot_of(&b), snapshot_of(&c));
        let left = sa.merge(&sb).merge(&sc);
        let right = sa.merge(&sb.merge(&sc));
        prop_assert_eq!(&left, &right);
        prop_assert_eq!(&sb.merge(&sa), &sa.merge(&sb));

        // Merging equals recording the concatenation — bucket-exact.
        let mut all = a.clone();
        all.extend(&b);
        all.extend(&c);
        prop_assert_eq!(&left, &snapshot_of(&all));
    }

    #[test]
    fn small_values_are_bucket_exact(
        samples in proptest::collection::vec(0u64..(1 << SUB_BITS), 1..200),
        q in 0.0f64..=1.0,
    ) {
        let snap = snapshot_of(&samples);
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        // Below 2^SUB_BITS every value owns its own bucket: quantiles are
        // exact, not approximate.
        prop_assert_eq!(snap.quantile(q), oracle_quantile(&sorted, q));
        prop_assert_eq!(snap.sum, samples.iter().sum::<u64>());
    }
}

#[test]
fn zero_lands_in_the_zero_bucket() {
    let mut snap = HistogramSnapshot::new();
    snap.record(0);
    assert_eq!(bucket_index(0), 0);
    assert_eq!(snap.quantile(0.5), 0);
    assert_eq!((snap.min, snap.max, snap.count, snap.sum), (0, 0, 1, 0));
}

#[test]
fn u64_max_lands_in_the_top_bucket_without_panic() {
    assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    let hist = Histogram::new();
    hist.record(u64::MAX);
    hist.record(u64::MAX - 1);
    let snap = hist.snapshot();
    // The midpoint estimate is clamped into the exact observed range.
    assert_eq!(snap.quantile(1.0), u64::MAX);
    assert_eq!(snap.max, u64::MAX);
    assert_eq!(snap.count, 2);
}

#[test]
fn sum_saturates_instead_of_wrapping() {
    let mut snap = HistogramSnapshot::new();
    snap.record(u64::MAX);
    snap.record(u64::MAX);
    assert_eq!(snap.sum, u64::MAX, "sum must saturate, not wrap");
    let merged = snap.merge(&snap);
    assert_eq!(merged.sum, u64::MAX);
    assert_eq!(merged.count, 4);
}

#[test]
fn concurrent_shards_merge_to_the_single_writer_result() {
    let hist = Histogram::new();
    let samples: Vec<u64> = (0..4_000u64).map(|i| i * 977).collect();
    std::thread::scope(|scope| {
        for chunk in samples.chunks(500) {
            let hist = &hist;
            scope.spawn(move || {
                for &s in chunk {
                    hist.record(s);
                }
            });
        }
    });
    assert_eq!(hist.snapshot(), snapshot_of(&samples));
}
