//! Behavioural tests of the telemetry registry: aggregation, concurrency,
//! enable/disable gating, span hierarchy, and report round-tripping.

use ccs_telemetry::{Registry, RunReport};
use std::time::Duration;

#[test]
fn counter_aggregates_adds_and_increments() {
    let registry = Registry::new();
    registry.enable();
    let c = registry.counter("work.items");
    c.incr();
    c.add(41);
    assert_eq!(c.get(), 42);
    assert_eq!(registry.report().counter("work.items"), 42);
    // Handles to the same name share the underlying cell.
    let again = registry.counter("work.items");
    again.incr();
    assert_eq!(c.get(), 43);
}

#[test]
fn disabled_registry_records_nothing() {
    let registry = Registry::new();
    let c = registry.counter("quiet");
    let t = registry.timer("quiet_timer");
    let g = registry.gauge("quiet_gauge");
    c.add(10);
    t.record(Duration::from_millis(5));
    g.set(3.0);
    let _span = registry.span("quiet_span");
    drop(_span);
    let report = registry.report();
    assert_eq!(report.counter("quiet"), 0);
    assert_eq!(report.timers["quiet_timer"].count, 0);
    assert_eq!(report.gauges["quiet_gauge"], 0.0);
    assert!(report.spans.is_empty(), "disabled spans never register");
}

#[test]
fn reenabling_resumes_counting_on_the_same_handles() {
    let registry = Registry::new();
    let c = registry.counter("toggled");
    c.incr(); // disabled: dropped
    registry.enable();
    c.incr();
    registry.disable();
    c.incr(); // dropped again
    registry.enable();
    c.incr();
    assert_eq!(c.get(), 2);
}

#[test]
fn timer_aggregation_tracks_extremes_and_mean() {
    let registry = Registry::new();
    registry.enable();
    let t = registry.timer("step");
    for ms in [10.0, 20.0, 60.0] {
        t.record_secs(ms / 1e3);
    }
    let stats = &registry.report().timers["step"];
    assert_eq!(stats.count, 3);
    assert!((stats.min_ms - 10.0).abs() < 1e-9);
    assert!((stats.max_ms - 60.0).abs() < 1e-9);
    assert!((stats.mean_ms - 30.0).abs() < 1e-9);
    assert!((stats.total_ms - 90.0).abs() < 1e-9);
    // p50 of {10, 20, 60} targets the middle sample, p95/p99 the
    // largest; the histogram backend reports bucket midpoints, so allow
    // its ≤ 2^-5 relative error.
    assert!((stats.p50_ms - 20.0).abs() <= 20.0 / 16.0);
    assert!((stats.p95_ms - 60.0).abs() <= 60.0 / 16.0);
    assert!((stats.p99_ms - 60.0).abs() <= 60.0 / 16.0);
}

#[test]
fn timer_time_returns_the_closure_output() {
    let registry = Registry::new();
    registry.enable();
    let t = registry.timer("closure");
    let out = t.time(|| 7 * 6);
    assert_eq!(out, 42);
    let stats = &registry.report().timers["closure"];
    assert_eq!(stats.count, 1);
    assert!(stats.total_ms >= 0.0);
}

#[test]
fn timer_retention_stays_bounded_under_many_samples() {
    let registry = Registry::new();
    registry.enable();
    let t = registry.timer("flood");
    // Histogram memory is bounded at any sample count; aggregates must
    // stay exact and percentiles within the log-linear error envelope.
    for i in 0..20_000u64 {
        t.record_secs(i as f64 * 1e-6);
    }
    let stats = &registry.report().timers["flood"];
    assert_eq!(stats.count, 20_000);
    assert!((stats.max_ms - 19_999.0 * 1e-3).abs() < 1e-9);
    let p50_exact = 10_000.0 * 1e-3;
    assert!(
        (stats.p50_ms - p50_exact).abs() <= p50_exact / 16.0,
        "p50 {} strayed from {}",
        stats.p50_ms,
        p50_exact
    );
    let p99_exact = 19_800.0 * 1e-3;
    assert!(
        (stats.p99_ms - p99_exact).abs() <= p99_exact / 16.0,
        "p99 {} strayed from {}",
        stats.p99_ms,
        p99_exact
    );
}

#[test]
fn concurrent_increments_do_not_lose_updates() {
    let registry = Registry::new();
    registry.enable();
    let c = registry.counter("contended");
    std::thread::scope(|scope| {
        for _ in 0..8 {
            let c = c.clone();
            scope.spawn(move || {
                for _ in 0..10_000 {
                    c.incr();
                }
            });
        }
    });
    assert_eq!(c.get(), 80_000);
}

#[test]
fn spans_nest_into_slash_joined_paths() {
    let registry = Registry::new();
    registry.enable();
    {
        let _outer = registry.span("plan");
        {
            let _inner = registry.span("greedy");
        }
        {
            let _inner = registry.span("greedy");
        }
    }
    let report = registry.report();
    assert_eq!(report.spans["plan"].count, 1);
    assert_eq!(report.spans["plan/greedy"].count, 2);
    assert!(
        !report.spans.contains_key("greedy"),
        "nesting prefixes the path"
    );
}

#[test]
fn report_serialization_round_trips() {
    let registry = Registry::new();
    registry.enable();
    registry.counter("a.count").add(7);
    registry.gauge("b.gauge").set(2.5);
    registry.timer("c.timer").record_secs(0.125);
    {
        let _span = registry.span("d");
    }
    let report = registry.report();
    let json = report.to_json_pretty();
    let back: RunReport = serde_json::from_str(&json).expect("report JSON parses");
    assert_eq!(back, report, "serialize → deserialize must be lossless");
}

#[test]
fn reset_zeroes_metrics_but_keeps_handles_alive() {
    let registry = Registry::new();
    registry.enable();
    let c = registry.counter("resettable");
    c.add(5);
    registry.timer("resettable_timer").record_secs(1.0);
    registry.reset();
    let report = registry.report();
    assert_eq!(report.counter("resettable"), 0);
    assert_eq!(report.timers["resettable_timer"].count, 0);
    c.incr();
    assert_eq!(c.get(), 1, "old handles keep working after a reset");
}
