//! The persistent worker pool behind [`par_eval`](crate::par_eval).
//!
//! ## Lifecycle
//!
//! Worker threads are spawned **lazily**: the first batch that wants `k`
//! helpers brings the pool up to `k` threads, and later batches reuse (or
//! grow) that set. Workers park on a condvar between batches, so an idle
//! pool costs nothing but memory; nothing is ever torn down — the threads
//! are detached and die with the process.
//!
//! ## Anatomy of a batch
//!
//! A batch lives entirely on the **submitting caller's stack**: the closure,
//! the result slots, and the shared chunk cursor. The caller publishes a
//! type-erased [`JobRef`] to the pool's injector list, wakes parked workers,
//! and then immediately starts executing chunks itself — the caller is
//! always worker number one, so a batch never waits for a thread wake-up to
//! make progress. Helpers that arrive late simply find the cursor exhausted
//! and go back to sleep; helpers that arrive in time claim chunks from the
//! same atomic cursor (chunked work-stealing).
//!
//! ## Why this is sound
//!
//! The `JobRef` is a raw pointer to stack memory, so the pool must guarantee
//! no worker touches it after `run` returns. The protocol:
//!
//! * A helper *claims* a job (incrementing its `active` counter) **while
//!   holding the pool lock**, and only while the job is still in the
//!   injector list.
//! * Before returning, the caller removes the job from the list (same
//!   lock), then waits until `active == 0`. After the removal no new
//!   claims can happen, so the wait terminates and no helper can hold a
//!   reference once `run` returns.
//! * A finishing helper clones the caller's [`Thread`] handle *before* its
//!   final `active` decrement; after the decrement it touches only that
//!   owned clone (to unpark the caller), never the job again.
//!
//! The release/acquire pairing on `active` also makes every helper's slot
//! writes visible to the caller before it reads the results.
//!
//! ## Determinism
//!
//! Chunks are claimed dynamically, but every result is scattered back into
//! its index slot, so the output order — and therefore every downstream
//! serial reduction — is independent of which thread computed what.

use std::any::Any;
use std::cell::{Cell, UnsafeCell};
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};
use std::thread::{self, Thread};

/// One result slot, written exactly once by whichever thread claims its
/// chunk. Distinct indices are written by distinct claims, and the caller
/// only reads after `active == 0`, so the aliasing is race-free.
struct Slot<U>(UnsafeCell<Option<U>>);

// SAFETY: slots are only written through disjoint cursor claims and only
// read by the caller after all helpers have released the job.
unsafe impl<U: Send> Sync for Slot<U> {}

/// The stack-allocated state of one in-flight batch.
struct Job<'scope, U, F> {
    f: &'scope F,
    slots: &'scope [Slot<U>],
    cursor: AtomicUsize,
    n: usize,
    chunk: usize,
    /// Helpers currently inside [`run_chunks`] (the caller is not counted).
    active: AtomicUsize,
    /// First panic payload raised by a helper's closure call.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    /// The submitting thread, unparked by the last finishing helper.
    caller: Thread,
}

/// Type-erased handle to a [`Job`] on some caller's stack.
#[derive(Clone, Copy)]
struct JobRef {
    data: *const (),
    /// Monomorphized entry point: claim chunks until the cursor runs dry,
    /// then release the claim and unpark the caller.
    run: unsafe fn(*const ()),
    /// Monomorphized claim registration (`active += 1`); called under the
    /// pool lock while the job is provably alive.
    activate: unsafe fn(*const ()),
}

// SAFETY: the claim protocol above keeps the pointee alive for as long as
// any worker can reach this reference.
unsafe impl Send for JobRef {}

/// An injector-list entry: a job plus how many more helpers it wants.
struct JobEntry {
    id: u64,
    job: JobRef,
    claims: usize,
    cap: usize,
}

struct PoolState {
    jobs: Vec<JobEntry>,
    next_id: u64,
    spawned: usize,
}

struct Pool {
    state: Mutex<PoolState>,
    work: Condvar,
}

static POOL: OnceLock<Pool> = OnceLock::new();

fn pool() -> &'static Pool {
    POOL.get_or_init(|| Pool {
        state: Mutex::new(PoolState {
            jobs: Vec::new(),
            next_id: 0,
            spawned: 0,
        }),
        work: Condvar::new(),
    })
}

thread_local! {
    static IS_POOL_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// `true` on a pool worker thread. Nested [`par_eval`](crate::par_eval)
/// calls from inside a batch closure detect this and run inline — the
/// outer batch already owns the parallelism.
pub(crate) fn on_pool_worker() -> bool {
    IS_POOL_WORKER.with(Cell::get)
}

fn worker_loop() {
    IS_POOL_WORKER.with(|f| f.set(true));
    let pool = pool();
    let mut state = pool.state.lock().expect("pool lock poisoned");
    loop {
        if let Some(idx) = state.jobs.iter().position(|e| e.claims < e.cap) {
            let entry = &mut state.jobs[idx];
            entry.claims += 1;
            let job = entry.job;
            // SAFETY: the job is still in the injector list, so the caller
            // has not returned; registering under the lock means the caller
            // will wait for this claim.
            unsafe { (job.activate)(job.data) };
            if entry.claims >= entry.cap {
                state.jobs.remove(idx);
            }
            drop(state);
            // SAFETY: the claim above keeps the job alive until `run`
            // performs its final `active` decrement.
            unsafe { (job.run)(job.data) };
            state = pool.state.lock().expect("pool lock poisoned");
        } else {
            state = pool.work.wait(state).expect("pool lock poisoned");
        }
    }
}

/// Shared chunk loop: claim `chunk` indices at a time until the cursor
/// passes `n`, scattering each result into its slot.
fn run_chunks<U, F: Fn(usize) -> U>(job: &Job<'_, U, F>) {
    loop {
        let start = job.cursor.fetch_add(job.chunk, Ordering::Relaxed);
        if start >= job.n {
            return;
        }
        let end = (start + job.chunk).min(job.n);
        for i in start..end {
            let value = (job.f)(i);
            // SAFETY: index `i` belongs to exactly one claimed chunk, and
            // the caller reads slots only after every claim is released.
            unsafe { *job.slots[i].0.get() = Some(value) };
        }
    }
}

/// Helper-side monomorphized entry point (see [`JobRef::run`]).
unsafe fn run_helper<U, F>(data: *const ())
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    let job = unsafe { &*data.cast::<Job<'_, U, F>>() };
    if let Err(payload) = panic::catch_unwind(AssertUnwindSafe(|| run_chunks(job))) {
        let mut first = job.panic.lock().expect("panic slot poisoned");
        if first.is_none() {
            *first = Some(payload);
        }
    }
    // Clone the handle *before* releasing the claim: after the decrement
    // the job memory may be freed at any moment.
    let caller = job.caller.clone();
    job.active.fetch_sub(1, Ordering::Release);
    caller.unpark();
}

/// Claim registration (see [`JobRef::activate`]); runs under the pool lock.
unsafe fn activate_helper<U, F>(data: *const ())
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    let job = unsafe { &*data.cast::<Job<'_, U, F>>() };
    job.active.fetch_add(1, Ordering::Relaxed);
}

/// Runs `f(0..n)` across the caller plus up to `workers - 1` pool helpers,
/// returning results in index order. Must only be called with
/// `workers >= 2` and `n >= 2`, off any pool worker thread.
pub(crate) fn run<U, F>(n: usize, workers: usize, f: &F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    let helper_cap = workers - 1;
    // Oversplit relative to the worker count so late-arriving helpers can
    // still steal useful work from an uneven batch.
    let chunk = (n / (workers * 8)).max(1);

    let mut slots: Vec<Slot<U>> = Vec::with_capacity(n);
    slots.resize_with(n, || Slot(UnsafeCell::new(None)));

    let job = Job {
        f,
        slots: &slots,
        cursor: AtomicUsize::new(0),
        n,
        chunk,
        active: AtomicUsize::new(0),
        panic: Mutex::new(None),
        caller: thread::current(),
    };
    let job_ref = JobRef {
        data: (&job as *const Job<'_, U, F>).cast(),
        run: run_helper::<U, F>,
        activate: activate_helper::<U, F>,
    };

    let id;
    {
        let mut state = pool().state.lock().expect("pool lock poisoned");
        id = state.next_id;
        state.next_id += 1;
        state.jobs.push(JobEntry {
            id,
            job: job_ref,
            claims: 0,
            cap: helper_cap,
        });
        while state.spawned < helper_cap {
            let spawn = thread::Builder::new()
                .name(format!("ccs-par-{}", state.spawned))
                .spawn(worker_loop);
            match spawn {
                Ok(_) => state.spawned += 1,
                Err(_) => break,
            }
        }
    }
    pool().work.notify_all();

    // The caller is always the first worker: progress never depends on a
    // helper waking up in time.
    let caller_result = panic::catch_unwind(AssertUnwindSafe(|| run_chunks(&job)));

    // Retire the job so no further helper can claim it, then wait out the
    // helpers that already did.
    {
        let mut state = pool().state.lock().expect("pool lock poisoned");
        if let Some(idx) = state.jobs.iter().position(|e| e.id == id) {
            state.jobs.remove(idx);
        }
    }
    while job.active.load(Ordering::Acquire) != 0 {
        thread::park();
    }

    if let Some(payload) = job.panic.lock().expect("panic slot poisoned").take() {
        panic::resume_unwind(payload);
    }
    if let Err(payload) = caller_result {
        panic::resume_unwind(payload);
    }

    slots
        .into_iter()
        .map(|slot| {
            slot.0
                .into_inner()
                .expect("every index is claimed exactly once")
        })
        .collect()
}
