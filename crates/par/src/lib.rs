//! # ccs-par
//!
//! A small **deterministic** parallel-map layer over a lazily started
//! persistent worker pool, for the embarrassingly parallel evaluation
//! batches inside the CCS schedulers (CCSA's facility scan, CCSGA's
//! best-response scan, the submodular oracle's prefix chains).
//!
//! ## Determinism contract
//!
//! [`par_eval`] and [`par_map`] return results **in index order**, exactly
//! as the equivalent serial loop would, regardless of how the work was
//! interleaved across threads. As long as the supplied closure is a pure
//! function of its index (which every caller in this workspace guarantees),
//! the output is *bit-identical at any thread count* — callers then apply
//! their own serial reductions (first-wins argmin, prefix diffs, …) on top,
//! so whole-algorithm results do not drift when `CCS_THREADS` changes.
//!
//! ## The thread-count knob
//!
//! The worker count is a process-wide knob resolved in this order:
//!
//! 1. [`set_threads`] (the `--threads` CLI flag calls this),
//! 2. the `CCS_THREADS` environment variable,
//! 3. [`std::thread::available_parallelism`].
//!
//! A count of `1` short-circuits to the **exact serial path**: no threads
//! are spawned and the closure runs inline in index order.
//!
//! ## The worker pool
//!
//! Earlier versions spawned scoped threads per call — tens of microseconds
//! of overhead that swamped paper-size batches (BENCH_3 recorded
//! `speedup < 1` on every parallel bench). Batches now run on a
//! **persistent pool** (the `pool` module): worker threads are spawned lazily on
//! the first large-enough batch, park on a condvar between batches, and
//! live for the rest of the process. Submitting a batch costs one mutex
//! push plus a wake; the **caller always participates** as the first
//! worker, so a batch completes at serial speed even if every helper
//! arrives late. Work is claimed in chunks from an atomic cursor and every
//! result is scattered back into its index slot, so the determinism
//! contract above is unchanged. Nested calls from inside a batch closure
//! run inline on the worker that issued them.
//!
//! ## The minimum-work cutoff
//!
//! Even a pooled dispatch costs a few microseconds — more than an entire
//! small batch (e.g. the 48-element Lovász prefix chains of `sfm_mnp_n48`)
//! takes to run serially. Batches shorter than the **minimum item count**
//! therefore run inline even when multiple workers are configured; the
//! result is bit-identical by construction (it is the same serial order).
//! The cutoff is resolved in this order:
//!
//! 1. [`set_min_items`],
//! 2. the `CCS_PAR_MIN_ITEMS` environment variable,
//! 3. the built-in default of `64`.
//!
//! Callers whose per-item work is expensive (a full facility evaluation,
//! say) can lower the bar per call site with [`par_eval_min`] /
//! [`par_map_min`].
//!
//! ## Zero-dependency design
//!
//! Like `ccs-telemetry`, this crate uses nothing beyond `std` (plus the
//! telemetry counters themselves). The build environment has no registry
//! access, and a persistent pool with an atomic chunk cursor covers
//! everything the schedulers need — a full `rayon` would add weight for
//! features (nested pools, splitting heuristics) the hot paths never use.

mod pool;

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::thread;

/// `0` means "no override": fall back to `CCS_THREADS` or the machine.
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// The environment/default resolution, done once per process.
fn default_threads() -> usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        match std::env::var("CCS_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
        {
            Some(n) if n >= 1 => n,
            _ => thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1),
        }
    })
}

/// The worker count parallel batches currently run with (always `>= 1`).
pub fn threads() -> usize {
    match OVERRIDE.load(Ordering::Relaxed) {
        0 => default_threads(),
        n => n,
    }
}

/// Overrides the process-wide worker count. `0` clears the override,
/// restoring the `CCS_THREADS`-or-machine default; `1` forces the exact
/// serial path.
///
/// Because every parallel batch is deterministic (see the module docs),
/// changing this concurrently with running work affects only performance,
/// never results.
pub fn set_threads(n: usize) {
    OVERRIDE.store(n, Ordering::Relaxed);
}

/// `0` means "no override": fall back to `CCS_PAR_MIN_ITEMS` or the default.
static MIN_ITEMS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Batches below this size never pay thread-spawn overhead.
const DEFAULT_MIN_ITEMS: usize = 64;

/// The environment/default resolution of the cutoff, done once per process.
fn default_min_items() -> usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        std::env::var("CCS_PAR_MIN_ITEMS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or(DEFAULT_MIN_ITEMS)
    })
}

/// The process-wide minimum batch size below which [`par_eval`] and
/// [`par_map`] run inline (always `>= 1`).
pub fn min_items() -> usize {
    let n = match MIN_ITEMS_OVERRIDE.load(Ordering::Relaxed) {
        0 => default_min_items(),
        n => n,
    };
    n.max(1)
}

/// Overrides the process-wide minimum-work cutoff. `0` clears the override,
/// restoring the `CCS_PAR_MIN_ITEMS`-or-default resolution; `1` disables
/// the cutoff entirely (every multi-item batch may go parallel).
///
/// Like [`set_threads`], this knob can only shift where work runs, never
/// what it computes.
pub fn set_min_items(n: usize) {
    MIN_ITEMS_OVERRIDE.store(n, Ordering::Relaxed);
}

/// Evaluates `f(0), f(1), …, f(n-1)` and returns the results in index
/// order, fanning the evaluations out over the persistent worker pool.
///
/// Work is distributed dynamically (chunks claimed from an atomic cursor),
/// so uneven per-index cost does not idle workers; results are scattered
/// back by index, so the output order is always the serial order. With
/// [`threads`]` == 1` or `n <= 1` the pool is not touched and `f` runs
/// inline — the exact serial path. The calling thread always executes
/// chunks itself, so throughput never regresses below serial waiting for a
/// pool worker to wake.
///
/// # Panics
///
/// Propagates the first panic raised by `f` on any worker.
pub fn par_eval<U, F>(n: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    par_eval_min(n, min_items(), f)
}

/// [`par_eval`] with an explicit per-call minimum batch size instead of the
/// process-wide [`min_items`] cutoff. Call sites whose per-item work is
/// heavy (full facility evaluations, candidate-move scans) pass a small
/// `min` so they still parallelize below the global cutoff.
pub fn par_eval_min<U, F>(n: usize, min: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    let workers = threads().min(n);
    if workers <= 1 || n < min || pool::on_pool_worker() {
        return (0..n).map(f).collect();
    }
    ccs_telemetry::counter!("par.batches").incr();
    ccs_telemetry::counter!("par.items").add(n as u64);

    pool::run(n, workers, &f)
}

/// [`par_eval_min`] writing into a caller-owned buffer instead of returning
/// a fresh `Vec`. `out` is cleared and refilled with `f(0), …, f(n-1)` in
/// index order. On the serial path (one worker, small batch, or a nested
/// call) this is **allocation-free** once `out` has grown to capacity —
/// the property the coalition engine's per-probe gain batches rely on.
/// The parallel path still allocates one scatter buffer inside the pool.
pub fn par_eval_min_into<U, F>(n: usize, min: usize, out: &mut Vec<U>, f: F)
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    out.clear();
    let workers = threads().min(n);
    if workers <= 1 || n < min || pool::on_pool_worker() {
        out.extend((0..n).map(f));
        return;
    }
    ccs_telemetry::counter!("par.batches").incr();
    ccs_telemetry::counter!("par.items").add(n as u64);

    let mut scattered = pool::run(n, workers, &f);
    out.append(&mut scattered);
}

/// [`par_map_min`] writing into a caller-owned buffer (see
/// [`par_eval_min_into`]).
pub fn par_map_min_into<T, U, F>(items: &[T], min: usize, out: &mut Vec<U>, f: F)
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    par_eval_min_into(items.len(), min, out, |i| f(i, &items[i]))
}

/// Maps `f` over `items`, returning results in item order. The closure also
/// receives the item index so callers can carry positional context without
/// allocating.
///
/// Same determinism and fallback semantics as [`par_eval`].
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    par_eval(items.len(), |i| f(i, &items[i]))
}

/// [`par_map`] with an explicit per-call minimum batch size (see
/// [`par_eval_min`]).
pub fn par_map_min<T, U, F>(items: &[T], min: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    par_eval_min(items.len(), min, |i| f(i, &items[i]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn results_are_in_index_order() {
        let out = par_eval(100, |i| i * 3);
        assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn map_passes_items_and_indices() {
        let items = vec![10u64, 20, 30];
        let out = par_map(&items, |i, &x| x + i as u64);
        assert_eq!(out, vec![10, 21, 32]);
    }

    #[test]
    fn identical_across_thread_counts() {
        let work = |i: usize| ((i as f64) * 0.37).sin().to_bits();
        let mut reference: Option<Vec<u64>> = None;
        for t in [1usize, 2, 3, 8] {
            set_threads(t);
            let got = par_eval(257, work);
            match &reference {
                Some(expected) => assert_eq!(&got, expected, "threads = {t}"),
                None => reference = Some(got),
            }
        }
        set_threads(0);
    }

    #[test]
    fn empty_and_singleton_batches() {
        assert_eq!(par_eval(0, |i| i), Vec::<usize>::new());
        assert_eq!(par_eval(1, |i| i + 7), vec![7]);
    }

    #[test]
    fn every_index_evaluated_exactly_once() {
        set_threads(4);
        let calls = AtomicU64::new(0);
        let out = par_eval(1000, |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            i
        });
        set_threads(0);
        assert_eq!(calls.load(Ordering::Relaxed), 1000);
        assert_eq!(out.len(), 1000);
    }

    #[test]
    fn override_takes_precedence_and_clears() {
        set_threads(3);
        assert_eq!(threads(), 3);
        set_threads(0);
        assert!(threads() >= 1);
    }

    #[test]
    fn min_items_override_takes_precedence_and_clears() {
        set_min_items(5);
        assert_eq!(min_items(), 5);
        set_min_items(0);
        assert!(min_items() >= 1);
    }

    #[test]
    fn below_cutoff_runs_on_the_calling_thread() {
        set_threads(8);
        let me = thread::current().id();
        let ids = par_eval_min(16, 64, |_| thread::current().id());
        set_threads(0);
        assert!(
            ids.iter().all(|&id| id == me),
            "small batch spawned threads"
        );
    }

    #[test]
    fn explicit_min_is_bit_identical_to_inline() {
        set_threads(4);
        let work = |i: usize| ((i as f64) * 0.73).cos().to_bits();
        let parallel = par_eval_min(200, 1, work);
        let inline = par_eval_min(200, 1000, work);
        set_threads(0);
        assert_eq!(parallel, inline);
        let items: Vec<u64> = (0..50).collect();
        assert_eq!(
            par_map_min(&items, 2, |i, &x| x + i as u64),
            par_map(&items, |i, &x| x + i as u64)
        );
    }

    #[test]
    fn into_variants_match_the_allocating_api() {
        set_threads(4);
        let work = |i: usize| ((i as f64) * 1.13).sin().to_bits();
        let mut buf = Vec::new();
        par_eval_min_into(300, 1, &mut buf, work);
        assert_eq!(buf, par_eval_min(300, 1, work));
        // Refilling the same buffer must fully replace its contents.
        par_eval_min_into(5, 1000, &mut buf, work);
        assert_eq!(buf, (0..5).map(work).collect::<Vec<_>>());
        let items: Vec<u64> = (0..80).collect();
        let mut mapped = Vec::new();
        par_map_min_into(&items, 1, &mut mapped, |i, &x| x * 2 + i as u64);
        set_threads(0);
        assert_eq!(mapped, par_map_min(&items, 1, |i, &x| x * 2 + i as u64));
    }

    #[test]
    fn worker_panics_propagate() {
        set_threads(2);
        let result = panic::catch_unwind(|| {
            par_eval(64, |i| {
                if i == 13 {
                    panic!("boom");
                }
                i
            })
        });
        set_threads(0);
        assert!(result.is_err());
    }

    #[test]
    fn pool_survives_a_panicked_batch() {
        set_threads(4);
        for round in 0..4 {
            let result = panic::catch_unwind(|| {
                par_eval_min(256, 1, |i| {
                    if i % 97 == round {
                        panic!("boom {round}");
                    }
                    i
                })
            });
            assert!(result.is_err(), "round {round}");
        }
        // The pool must still produce correct batches afterwards.
        let out = par_eval_min(256, 1, |i| i * 2);
        set_threads(0);
        assert_eq!(out, (0..256).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn nested_calls_run_inline_without_deadlock() {
        set_threads(4);
        let out = par_eval_min(64, 1, |i| {
            // A nested batch from inside a batch closure must not deadlock
            // the pool, whichever thread executes it.
            par_eval_min(8, 1, move |j| i * 8 + j).iter().sum::<usize>()
        });
        set_threads(0);
        let expected: Vec<usize> = (0..64).map(|i| (0..8).map(|j| i * 8 + j).sum()).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn concurrent_callers_share_the_pool() {
        set_threads(4);
        let results: Vec<Vec<u64>> = thread::scope(|scope| {
            let handles: Vec<_> = (0..4u64)
                .map(|t| {
                    scope.spawn(move || {
                        par_eval_min(512, 1, move |i| (i as u64).wrapping_mul(t + 1))
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        set_threads(0);
        for (t, got) in results.iter().enumerate() {
            let expected: Vec<u64> = (0..512u64).map(|i| i.wrapping_mul(t as u64 + 1)).collect();
            assert_eq!(got, &expected, "caller {t}");
        }
    }

    #[test]
    fn repeated_batches_reuse_pool_workers() {
        set_threads(3);
        for _ in 0..200 {
            let out = par_eval_min(128, 1, |i| i + 1);
            assert_eq!(out.len(), 128);
            assert_eq!(out[127], 128);
        }
        set_threads(0);
    }
}
