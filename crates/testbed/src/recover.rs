//! Testbed-backed recovery: the glue between [`ccs_core::recover`] and the
//! faulty discrete-event executor.
//!
//! [`FieldExecutor`] implements [`RecoveryExecutor`] over
//! [`execute_with_failures`]: recovery round `r` replays with seed
//! `base_seed + r` (noise and failures resampled per round, fully
//! deterministic per base seed), and [`RoundMode::Degraded`] rounds run
//! with [`FailureModel::none`] — degraded dispatches are dedicated, vetted
//! solo hires, so the graceful-degradation guarantee (`served_fraction ==
//! 1.0`) actually holds. The convenience wrapper [`recover`] wires it all
//! up for the common case.

use crate::noise::{FailureModel, NoiseModel};
use crate::sim::{execute_with_failures, FieldOutcome};
use ccs_core::lifetime::{LifetimeDriver, Policy, RoundDelivery};
use ccs_core::problem::CcsProblem;
use ccs_core::recover::{
    recover_with, RecoveryConfig, RecoveryExecutor, RecoveryOutcome, RoundExecution, RoundMode,
};
use ccs_core::schedule::Schedule;
use ccs_core::sharing::CostSharing;

/// A [`RecoveryExecutor`] that replays each round on the simulated field
/// testbed under `noise` and `failures`.
#[derive(Debug, Clone, Copy)]
pub struct FieldExecutor<'a> {
    noise: &'a NoiseModel,
    failures: &'a FailureModel,
    base_seed: u64,
}

impl<'a> FieldExecutor<'a> {
    /// A field executor replaying round `r` with seed `base_seed + r`.
    pub fn new(noise: &'a NoiseModel, failures: &'a FailureModel, base_seed: u64) -> Self {
        FieldExecutor {
            noise,
            failures,
            base_seed,
        }
    }
}

/// The executor needs the sharing scheme to bill realized costs, so the
/// trait is implemented on the pair `(FieldExecutor, &dyn CostSharing)`.
pub struct FieldRun<'a> {
    executor: FieldExecutor<'a>,
    sharing: &'a dyn CostSharing,
}

impl std::fmt::Debug for FieldRun<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FieldRun")
            .field("executor", &self.executor)
            .finish_non_exhaustive()
    }
}

impl<'a> FieldRun<'a> {
    /// Binds `executor` to the cost-sharing scheme used for billing.
    pub fn new(executor: FieldExecutor<'a>, sharing: &'a dyn CostSharing) -> Self {
        FieldRun { executor, sharing }
    }
}

impl RecoveryExecutor for FieldRun<'_> {
    type Outcome = FieldOutcome;

    fn execute(
        &mut self,
        problem: &CcsProblem,
        schedule: &Schedule,
        mode: RoundMode,
        round: usize,
    ) -> RoundExecution<FieldOutcome> {
        // Degraded dispatches are dedicated, pre-vetted hires: no stochastic
        // hard failures, otherwise the service guarantee could not hold.
        let failures = match mode {
            RoundMode::Degraded => FailureModel::none(),
            RoundMode::Initial | RoundMode::Recovery => *self.executor.failures,
        };
        let out = execute_with_failures(
            problem,
            schedule,
            self.sharing,
            self.executor.noise,
            &failures,
            self.executor.base_seed + round as u64,
        );
        RoundExecution {
            served: out.served.clone(),
            device_costs: out.device_costs.clone(),
            end_positions: out.final_positions.clone(),
            raw: out,
        }
    }
}

/// Executes `schedule` on the testbed with closed-loop recovery.
///
/// Round 0 replays `schedule` under `noise` + `failures` with `seed`;
/// unserved devices are re-planned with `policy` + `sharing` from where
/// they ended up and re-executed with seed `seed + round`, up to
/// `config.max_rounds` times, then degraded to solo dispatches if
/// `config.degrade`. Deterministic per `seed`.
///
/// # Examples
///
/// ```
/// use ccs_testbed::prelude::*;
/// use ccs_core::prelude::*;
///
/// let problem = field_problem(1);
/// let plan = ccsa(&problem, &EqualShare, CcsaOptions::default());
/// let failures = FailureModel { charger_breakdown_prob: 0.2, device_no_show_prob: 0.1 };
/// let out = recover(
///     &problem,
///     &plan,
///     Policy::Ccsa(CcsaOptions::default()),
///     &EqualShare,
///     &NoiseModel::field(),
///     &failures,
///     7,
///     &RecoveryConfig::default(),
/// );
/// assert_eq!(out.served_fraction(), 1.0, "degradation guarantees service");
/// ```
#[allow(clippy::too_many_arguments)]
pub fn recover(
    problem: &CcsProblem,
    schedule: &Schedule,
    policy: Policy,
    sharing: &dyn CostSharing,
    noise: &NoiseModel,
    failures: &FailureModel,
    seed: u64,
    config: &RecoveryConfig,
) -> RecoveryOutcome<FieldOutcome> {
    let mut run = FieldRun::new(FieldExecutor::new(noise, failures, seed), sharing);
    recover_with(problem, schedule, policy, sharing, &mut run, config)
}

/// A [`LifetimeDriver`] that replays every lifetime round on the testbed
/// under noise and hard failures, optionally with closed-loop recovery.
///
/// Lifetime round `r` replays with seed `base_seed + 1000 * r`; when
/// recovery is enabled, recovery sub-rounds consume `.. + 1000 * r + k`
/// (bounded well below 1000), so every replay in the whole lifetime draws
/// from a distinct, reproducible seed. Devices left unserved keep their
/// depleted batteries and re-request in the next lifetime round.
pub struct TestbedDriver<'a> {
    noise: &'a NoiseModel,
    failures: &'a FailureModel,
    sharing: &'a dyn CostSharing,
    policy: Policy,
    recovery: Option<RecoveryConfig>,
    base_seed: u64,
}

impl std::fmt::Debug for TestbedDriver<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TestbedDriver")
            .field("noise", &self.noise)
            .field("failures", &self.failures)
            .field("policy", &self.policy)
            .field("recovery", &self.recovery)
            .field("base_seed", &self.base_seed)
            .finish_non_exhaustive()
    }
}

impl<'a> TestbedDriver<'a> {
    /// A driver replaying with `noise` + `failures`, re-planning recovery
    /// rounds (if `recovery` is set) with `policy` + `sharing`.
    pub fn new(
        noise: &'a NoiseModel,
        failures: &'a FailureModel,
        sharing: &'a dyn CostSharing,
        policy: Policy,
        recovery: Option<RecoveryConfig>,
        base_seed: u64,
    ) -> Self {
        TestbedDriver {
            noise,
            failures,
            sharing,
            policy,
            recovery,
            base_seed,
        }
    }
}

impl LifetimeDriver for TestbedDriver<'_> {
    fn deliver(
        &mut self,
        problem: &CcsProblem,
        schedule: &Schedule,
        round: usize,
    ) -> RoundDelivery {
        let seed = self.base_seed + 1000 * round as u64;
        match &self.recovery {
            Some(config) => {
                let out = recover(
                    problem,
                    schedule,
                    self.policy,
                    self.sharing,
                    self.noise,
                    self.failures,
                    seed,
                    config,
                );
                RoundDelivery {
                    served: out.served.clone(),
                    total_cost: out.total_cost(),
                    // Re-dispatches are extra hires.
                    hires: out.rounds.iter().map(|r| r.schedule.groups().len()).sum(),
                }
            }
            None => {
                let out = execute_with_failures(
                    problem,
                    schedule,
                    self.sharing,
                    self.noise,
                    self.failures,
                    seed,
                );
                RoundDelivery {
                    served: out.served.clone(),
                    total_cost: out.total_cost(),
                    hires: schedule.groups().len(),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::{field_problem, FIELD_DEVICES};
    use crate::sim::execute;
    use ccs_core::prelude::*;

    fn harsh() -> FailureModel {
        FailureModel {
            charger_breakdown_prob: 0.2,
            device_no_show_prob: 0.1,
        }
    }

    /// Finds a seed where the unrecovered baseline actually drops devices,
    /// so "recovery strictly improves" is a meaningful comparison.
    fn seed_with_failures(problem: &CcsProblem, plan: &Schedule) -> u64 {
        let noise = NoiseModel::field();
        (0..100)
            .find(|&seed| {
                let out = execute_with_failures(problem, plan, &EqualShare, &noise, &harsh(), seed);
                out.served.iter().any(|s| !s)
            })
            .expect("a 20%/10% failure model must drop someone in 100 seeds")
    }

    #[test]
    fn recovery_strictly_improves_served_fraction() {
        let problem = field_problem(1);
        let plan = ccsa(&problem, &EqualShare, CcsaOptions::default());
        let noise = NoiseModel::field();
        let seed = seed_with_failures(&problem, &plan);

        let baseline = execute_with_failures(&problem, &plan, &EqualShare, &noise, &harsh(), seed);
        let baseline_frac =
            baseline.served.iter().filter(|s| **s).count() as f64 / baseline.served.len() as f64;

        let out = recover(
            &problem,
            &plan,
            Policy::Ccsa(CcsaOptions::default()),
            &EqualShare,
            &noise,
            &harsh(),
            seed,
            &RecoveryConfig {
                max_rounds: 3,
                degrade: true,
            },
        );
        assert!(
            out.served_fraction() > baseline_frac,
            "recovery {} must beat baseline {}",
            out.served_fraction(),
            baseline_frac
        );
        assert_eq!(out.served_fraction(), 1.0, "degradation serves everyone");
        assert_eq!(out.served.len(), FIELD_DEVICES);
        assert!(out.recovery_rounds() >= 1);
        // Round 0 is the baseline replay, bit for bit.
        assert_eq!(out.rounds[0].execution.raw, baseline);
    }

    #[test]
    fn recovery_is_deterministic_per_seed() {
        let problem = field_problem(2);
        let plan = ccsga(&problem, &EqualShare, CcsgaOptions::default()).schedule;
        let noise = NoiseModel::field();
        let run = || {
            recover(
                &problem,
                &plan,
                Policy::Ccsga(CcsgaOptions::default()),
                &EqualShare,
                &noise,
                &harsh(),
                11,
                &RecoveryConfig::default(),
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        // A different seed resamples the failures.
        let c = recover(
            &problem,
            &plan,
            Policy::Ccsga(CcsgaOptions::default()),
            &EqualShare,
            &noise,
            &harsh(),
            12,
            &RecoveryConfig::default(),
        );
        assert!(
            a.rounds.len() != c.rounds.len() || a != c,
            "different seeds should differ somewhere"
        );
    }

    #[test]
    fn no_failures_is_a_strict_noop() {
        let problem = field_problem(3);
        let plan = ccsa(&problem, &EqualShare, CcsaOptions::default());
        let noise = NoiseModel::field();
        let seed = 5;
        let plain = execute(&problem, &plan, &EqualShare, &noise, seed);
        let out = recover(
            &problem,
            &plan,
            Policy::Ccsa(CcsaOptions::default()),
            &EqualShare,
            &noise,
            &FailureModel::none(),
            seed,
            &RecoveryConfig::default(),
        );
        assert_eq!(out.recovery_rounds(), 0, "no failures, no extra rounds");
        assert!(!out.degraded);
        assert_eq!(
            out.rounds[0].execution.raw, plain,
            "reproduces execute exactly"
        );
        assert_eq!(out.device_costs, plain.device_costs);
        assert_eq!(out.served_fraction(), 1.0);
    }

    #[test]
    fn lifetime_on_the_testbed_recovers_unserved_requests() {
        let scenario = crate::field::field_scenario(9);
        let noise = NoiseModel::field();
        let failures = FailureModel {
            charger_breakdown_prob: 0.4,
            device_no_show_prob: 0.2,
        };
        let policy = Policy::Ccsa(CcsaOptions::default());
        let config = LifetimeConfig {
            rounds: 8,
            ..Default::default()
        };
        let params = CostParams::default();

        let mut faulty = TestbedDriver::new(&noise, &failures, &EqualShare, policy, None, 100);
        let dropped = run_lifetime_with(
            &scenario,
            &params,
            &EqualShare,
            policy,
            &config,
            &mut faulty,
        );
        assert!(
            dropped.unserved_requests > 0,
            "a 40%/20% failure model must drop requests over 8 rounds"
        );

        let mut recovering = TestbedDriver::new(
            &noise,
            &failures,
            &EqualShare,
            policy,
            Some(RecoveryConfig::default()),
            100,
        );
        let healed = run_lifetime_with(
            &scenario,
            &params,
            &EqualShare,
            policy,
            &config,
            &mut recovering,
        );
        assert_eq!(
            healed.unserved_requests, 0,
            "recovery with degradation serves every request"
        );
        assert!(healed.energy_purchased >= dropped.energy_purchased);
    }

    #[test]
    fn degraded_rounds_ignore_the_failure_model() {
        let problem = field_problem(4);
        let plan = ccsa(&problem, &EqualShare, CcsaOptions::default());
        let noise = NoiseModel::field();
        // Certain breakdown: no recovery round can ever serve anyone, only
        // the degraded round (which drops the failure model) can.
        let certain = FailureModel {
            charger_breakdown_prob: 1.0,
            device_no_show_prob: 0.0,
        };
        let out = recover(
            &problem,
            &plan,
            Policy::Ccsa(CcsaOptions::default()),
            &EqualShare,
            &noise,
            &certain,
            0,
            &RecoveryConfig {
                max_rounds: 2,
                degrade: true,
            },
        );
        assert!(out.degraded);
        assert_eq!(out.served_fraction(), 1.0);
        assert_eq!(out.rounds.len(), 4, "initial + 2 recoveries + degraded");
        assert!(out
            .rounds
            .iter()
            .take(3)
            .all(|r| r.execution.served.iter().all(|s| !s)));
    }
}
