//! # ccs-testbed — simulated field-experiment testbed
//!
//! The paper validates CCS scheduling on a physical testbed of 5 mobile
//! chargers and 8 rechargeable sensor nodes. This crate substitutes that
//! hardware (see `DESIGN.md`): a discrete-event executor ([`sim`]) replays
//! planned schedules under configurable physical imperfections ([`noise`]
//! — detours, speed jitter, WPT efficiency loss) on a hardware-scale arena
//! preset ([`field`]), measuring *realized* comprehensive costs, queueing
//! delays and makespan. Under [`noise::NoiseModel::ideal`] the replay
//! reproduces the planner's costs exactly, which pins the executor to the
//! cost model.
//!
//! # Example
//!
//! ```
//! use ccs_testbed::{field::field_problem, noise::NoiseModel, sim::execute};
//! use ccs_core::prelude::*;
//!
//! let problem = field_problem(1);
//! let plan = ccsa(&problem, &EqualShare, CcsaOptions::default());
//! let outcome = execute(&problem, &plan, &EqualShare, &NoiseModel::field(), 0);
//! assert!(outcome.total_cost().value() > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod event;
pub mod field;
pub mod noise;
pub mod recover;
pub mod sim;
pub mod trace;

/// Convenient glob import of the most commonly used items.
pub mod prelude {
    pub use crate::event::{EventQueue, SimTime};
    pub use crate::field::{field_noise, field_problem, field_scenario};
    pub use crate::noise::{FailureModel, NoiseModel};
    pub use crate::recover::{recover, FieldExecutor, FieldRun, TestbedDriver};
    pub use crate::sim::{execute, execute_with_failures, FieldOutcome};
    pub use crate::trace::{Trace, TraceEvent, TraceKind};
}
