//! Execution traces: the event timeline of a testbed replay.
//!
//! Every replay records what happened and when — device arrivals, charger
//! arrivals, service starts and completions — so outcomes can be debugged
//! ("why did d3 wait 200 s?") and visualized ([`Trace::render_timeline`])
//! without re-instrumenting the executor.

use ccs_wrsn::entities::{ChargerId, DeviceId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// What happened at one instant of the replay.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TraceKind {
    /// A device reached its group's gathering point.
    DeviceArrived {
        /// The device.
        device: DeviceId,
    },
    /// A charger reached a gathering point.
    ChargerArrived {
        /// The charger.
        charger: ChargerId,
        /// Index of the schedule group it arrived at.
        group: usize,
    },
    /// A device's charge began.
    ServiceStarted {
        /// The device.
        device: DeviceId,
    },
    /// A device's charge completed.
    ServiceCompleted {
        /// The device.
        device: DeviceId,
    },
    /// A charger broke down en route and never reached this group (nor any
    /// later group on its route). Emitted once per broken charger, at the
    /// estimated mid-leg breakdown time.
    ChargerBrokeDown {
        /// The charger that failed.
        charger: ChargerId,
        /// Index of the schedule group its broken leg was heading to.
        group: usize,
    },
    /// A device broke down halfway to its gathering point and never arrived.
    DeviceNoShow {
        /// The device.
        device: DeviceId,
    },
}

/// One timestamped trace event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Seconds since replay start.
    pub time_s: f64,
    /// What happened.
    pub kind: TraceKind,
}

/// The ordered event log of one replay.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Appends an event (the executor emits in nondecreasing time order).
    pub fn record(&mut self, time_s: f64, kind: TraceKind) {
        debug_assert!(
            self.events.last().is_none_or(|e| e.time_s <= time_s),
            "trace must be time-ordered"
        );
        self.events.push(TraceEvent { time_s, kind });
    }

    /// All events in time order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether anything happened at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events concerning one device, in time order.
    pub fn device_events(&self, device: DeviceId) -> Vec<TraceEvent> {
        self.events
            .iter()
            .filter(|e| match e.kind {
                TraceKind::DeviceArrived { device: d }
                | TraceKind::ServiceStarted { device: d }
                | TraceKind::ServiceCompleted { device: d }
                | TraceKind::DeviceNoShow { device: d } => d == device,
                TraceKind::ChargerArrived { .. } | TraceKind::ChargerBrokeDown { .. } => false,
            })
            .copied()
            .collect()
    }

    /// The `(arrival, service start, service end)` times of a device, any
    /// of which may be missing (no-shows, broken chargers).
    pub fn device_phases(&self, device: DeviceId) -> (Option<f64>, Option<f64>, Option<f64>) {
        let mut arrived = None;
        let mut started = None;
        let mut completed = None;
        for e in self.device_events(device) {
            match e.kind {
                TraceKind::DeviceArrived { .. } => arrived = Some(e.time_s),
                TraceKind::ServiceStarted { .. } => started = Some(e.time_s),
                TraceKind::ServiceCompleted { .. } => completed = Some(e.time_s),
                TraceKind::ChargerArrived { .. }
                | TraceKind::ChargerBrokeDown { .. }
                | TraceKind::DeviceNoShow { .. } => {}
            }
        }
        (arrived, started, completed)
    }

    /// Renders a per-device ASCII timeline: `.` travelling, `-` waiting,
    /// `#` charging, over `width` columns spanning the full replay.
    pub fn render_timeline(&self, devices: usize, width: usize) -> String {
        let end = self
            .events
            .last()
            .map(|e| e.time_s)
            .unwrap_or(0.0)
            .max(1e-9);
        let col = |t: f64| ((t / end) * (width - 1) as f64).round() as usize;
        let mut out = String::new();
        for i in 0..devices {
            let d = DeviceId::new(i as u32);
            let (arrived, started, completed) = self.device_phases(d);
            let mut row = vec![' '; width];
            let a = arrived.map(&col).unwrap_or(width - 1);
            for c in row.iter_mut().take(a.min(width - 1) + 1) {
                *c = '.';
            }
            if let (Some(s), Some(a)) = (started, arrived) {
                for c in row.iter_mut().take(col(s).min(width - 1) + 1).skip(col(a)) {
                    *c = '-';
                }
                if let Some(e) = completed {
                    for c in row.iter_mut().take(col(e).min(width - 1) + 1).skip(col(s)) {
                        *c = '#';
                    }
                }
            }
            out.push_str(&format!("{d:>4} |{}|\n", row.iter().collect::<String>()));
        }
        out.push_str(&format!(
            "      0 s {:>width$.1} s\n",
            end,
            width = width.saturating_sub(4)
        ));
        out
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            TraceKind::DeviceArrived { device } => {
                write!(f, "[{:>8.1}s] {device} arrived", self.time_s)
            }
            TraceKind::ChargerArrived { charger, group } => {
                write!(
                    f,
                    "[{:>8.1}s] {charger} arrived at group {group}",
                    self.time_s
                )
            }
            TraceKind::ServiceStarted { device } => {
                write!(f, "[{:>8.1}s] {device} charging", self.time_s)
            }
            TraceKind::ServiceCompleted { device } => {
                write!(f, "[{:>8.1}s] {device} done", self.time_s)
            }
            TraceKind::ChargerBrokeDown { charger, group } => {
                write!(
                    f,
                    "[{:>8.1}s] {charger} broke down heading to group {group}",
                    self.time_s
                )
            }
            TraceKind::DeviceNoShow { device } => {
                write!(
                    f,
                    "[{:>8.1}s] {device} broke down en route (no-show)",
                    self.time_s
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        let mut t = Trace::new();
        t.record(
            1.0,
            TraceKind::DeviceArrived {
                device: DeviceId::new(0),
            },
        );
        t.record(
            2.0,
            TraceKind::ChargerArrived {
                charger: ChargerId::new(1),
                group: 0,
            },
        );
        t.record(
            2.0,
            TraceKind::ServiceStarted {
                device: DeviceId::new(0),
            },
        );
        t.record(
            5.0,
            TraceKind::ServiceCompleted {
                device: DeviceId::new(0),
            },
        );
        t
    }

    #[test]
    fn records_in_order_and_filters_by_device() {
        let t = sample();
        assert_eq!(t.len(), 4);
        assert!(!t.is_empty());
        let d0 = t.device_events(DeviceId::new(0));
        assert_eq!(d0.len(), 3, "charger arrival is not a device event");
        let none = t.device_events(DeviceId::new(9));
        assert!(none.is_empty());
    }

    #[test]
    fn phases_extract_the_three_milestones() {
        let t = sample();
        let (a, s, c) = t.device_phases(DeviceId::new(0));
        assert_eq!(a, Some(1.0));
        assert_eq!(s, Some(2.0));
        assert_eq!(c, Some(5.0));
        let (a, s, c) = t.device_phases(DeviceId::new(7));
        assert_eq!((a, s, c), (None, None, None));
    }

    #[test]
    fn timeline_renders_all_phases() {
        let t = sample();
        let timeline = t.render_timeline(1, 40);
        assert!(timeline.contains('.'), "travel phase");
        assert!(timeline.contains('-'), "waiting phase");
        assert!(timeline.contains('#'), "charging phase");
        assert!(timeline.contains("d0"));
    }

    #[test]
    fn display_is_readable() {
        let t = sample();
        let text: Vec<String> = t.events().iter().map(|e| e.to_string()).collect();
        assert!(text[0].contains("d0 arrived"));
        assert!(text[1].contains("c1 arrived at group 0"));
        assert!(text[3].contains("d0 done"));
    }

    #[test]
    fn serde_round_trip() {
        let t = sample();
        let json = serde_json::to_string(&t).unwrap();
        let back: Trace = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn failure_events_display_and_filter() {
        let mut t = Trace::new();
        t.record(
            3.0,
            TraceKind::DeviceNoShow {
                device: DeviceId::new(2),
            },
        );
        t.record(
            4.0,
            TraceKind::ChargerBrokeDown {
                charger: ChargerId::new(1),
                group: 3,
            },
        );
        let text: Vec<String> = t.events().iter().map(|e| e.to_string()).collect();
        assert!(text[0].contains("d2 broke down en route"));
        assert!(text[1].contains("c1 broke down heading to group 3"));
        // The no-show is a device event; the breakdown is not.
        assert_eq!(t.device_events(DeviceId::new(2)).len(), 1);
        // Neither counts as an arrival/start/completion milestone.
        assert_eq!(t.device_phases(DeviceId::new(2)), (None, None, None));
    }

    #[test]
    fn empty_trace_renders() {
        let t = Trace::new();
        let timeline = t.render_timeline(2, 20);
        assert!(timeline.contains("d0"));
        assert!(timeline.contains("d1"));
    }
}
