//! The paper's field-experiment testbed, as a simulated preset.
//!
//! The paper evaluates on a physical testbed of **5 chargers and 8
//! rechargeable sensor nodes**. That hardware is not available here, so
//! this module provides the closest synthetic equivalent (see the
//! substitution note in `DESIGN.md`): a small indoor arena with
//! hardware-scale parameters — sub-kilojoule sensor batteries, 5 W-class
//! WPT coils, slow robots — and the [`NoiseModel::field`] imperfections
//! applied at execution time. Experiment `table2_field` replays schedules
//! on this preset to reproduce the paper's field numbers.

use crate::noise::NoiseModel;
use ccs_core::problem::{CcsProblem, CostParams};
use ccs_wrsn::scenario::{ParamRange, Scenario, ScenarioGenerator};

/// Number of rechargeable sensor nodes on the paper's testbed.
pub const FIELD_DEVICES: usize = 8;
/// Number of mobile chargers on the paper's testbed.
pub const FIELD_CHARGERS: usize = 5;
/// Side of the (square) indoor arena, meters.
pub const FIELD_SIDE_M: f64 = 25.0;

/// Generates one randomized placement of the 5-charger / 8-node testbed.
///
/// Entity parameters are fixed to hardware scale; only positions and
/// demands vary with the seed (as they would across field trials).
pub fn field_scenario(seed: u64) -> Scenario {
    ScenarioGenerator::new(seed)
        .devices(FIELD_DEVICES)
        .chargers(FIELD_CHARGERS)
        .field_side(FIELD_SIDE_M)
        // ~2 kJ sensor batteries refilled from various depletion levels.
        .demand_range(ParamRange::new(400.0, 1_600.0))
        // Small robots pay noticeably per meter indoors (battery + time).
        .device_move_cost_range(ParamRange::new(0.15, 0.30))
        // A hire costs real operator effort: the dominant NCP overhead.
        .base_fee_range(ParamRange::new(6.0, 12.0))
        .charger_travel_cost_range(ParamRange::new(0.25, 0.45))
        .energy_price_range(ParamRange::new(0.002, 0.004))
        .occupancy_rate_range(ParamRange::new(1.0, 2.5))
        .generate()
}

/// The testbed scenario wrapped as a CCS problem with default parameters.
pub fn field_problem(seed: u64) -> CcsProblem {
    CcsProblem::with_params(field_scenario(seed), CostParams::default())
}

/// The noise conditions of the field runs.
pub fn field_noise() -> NoiseModel {
    NoiseModel::field()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::execute;
    use ccs_core::algo::{ccsa, noncooperation, CcsaOptions};
    use ccs_core::metrics::saving_percent;
    use ccs_core::sharing::EqualShare;
    use ccs_wrsn::units::Cost;

    #[test]
    fn preset_matches_the_paper_testbed_shape() {
        let s = field_scenario(1);
        assert_eq!(s.devices().len(), FIELD_DEVICES);
        assert_eq!(s.chargers().len(), FIELD_CHARGERS);
        assert!((s.field().width() - FIELD_SIDE_M).abs() < 1e-12);
    }

    #[test]
    fn different_trials_have_different_placements() {
        assert_ne!(field_scenario(1), field_scenario(2));
        assert_eq!(field_scenario(3), field_scenario(3));
    }

    #[test]
    fn cooperative_scheduling_wins_on_the_testbed() {
        // The field-experiment headline (H3): averaged over noisy trials,
        // CCSA beats NCP by a large margin on realized comprehensive cost.
        let mut coop_total = Cost::ZERO;
        let mut solo_total = Cost::ZERO;
        for trial in 0..8 {
            let p = field_problem(trial);
            let coop = ccsa(&p, &EqualShare, CcsaOptions::default());
            let solo = noncooperation(&p, &EqualShare);
            coop_total += execute(&p, &coop, &EqualShare, &field_noise(), trial).total_cost();
            solo_total += execute(&p, &solo, &EqualShare, &field_noise(), trial).total_cost();
        }
        let saving = saving_percent(coop_total, solo_total);
        assert!(
            saving > 15.0,
            "field saving should be substantial, got {saving:.1}%"
        );
    }
}
