//! The schedule executor: replays a planned [`Schedule`] on the simulated
//! physical testbed and measures *realized* comprehensive costs.
//!
//! The execution is a discrete-event simulation:
//!
//! 1. at `t = 0` every device departs toward its group's gathering point
//!    (noisy detour + speed), and every charger departs toward the first of
//!    its groups;
//! 2. a charger that serves several groups visits them in schedule order,
//!    chaining travel legs;
//! 3. at each gathering point the charger serves members **sequentially**
//!    in arrival order (FIFO), waiting for stragglers;
//! 4. each charge transmits `demand / efficiency_factor` Joules (the coil
//!    under-performs), which is what the provider bills.
//!
//! Realized billing follows the service contract: base fee per hire +
//! energy price × transmitted energy + travel rate × realized leg length +
//! congestion. Shares are recomputed from the realized bill with the same
//! cost-sharing scheme the planner used, so planned and realized
//! comprehensive costs are directly comparable — and coincide exactly under
//! [`NoiseModel::ideal`] (pinned by a test).

use crate::event::{EventQueue, SimTime};
use crate::noise::{FailureModel, NoiseModel};
use crate::trace::{Trace, TraceKind};
use ccs_core::problem::CcsProblem;
use ccs_core::schedule::Schedule;
use ccs_core::sharing::CostSharing;
use ccs_wrsn::entities::ChargerId;
use ccs_wrsn::geometry::Point;
use ccs_wrsn::units::{Cost, Joules, Meters, Seconds};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::{BTreeMap, VecDeque};

/// Distance between the charger coil and a device under service.
const LINK_DISTANCE_M: f64 = 0.3;

/// Measured outcome of one testbed replay.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldOutcome {
    /// Realized comprehensive cost per device, indexed by `DeviceId::index()`.
    pub device_costs: Vec<Cost>,
    /// Queueing delay per device (service start − arrival).
    pub device_wait: Vec<Seconds>,
    /// Realized bill per schedule group (same order as `schedule.groups()`).
    pub group_bills: Vec<Cost>,
    /// Time of the last event of the realized timeline — the last charge
    /// completion, or, when every charge was voided by failures, the last
    /// device arrival / breakdown (total failure still takes time).
    pub makespan: Seconds,
    /// Total energy transmitted by all chargers (≥ total demand under
    /// imperfect efficiency).
    pub energy_transmitted: Joules,
    /// Whether each device actually received its energy (false for
    /// no-shows and members of groups whose charger broke down).
    pub served: Vec<bool>,
    /// Where each device physically ended the replay: the gathering point
    /// for devices that completed the trip (served or stood up by a broken
    /// charger), the halfway point for no-shows. Recovery re-plans unserved
    /// devices from these positions.
    pub final_positions: Vec<Point>,
    /// The full event timeline of the replay.
    pub trace: Trace,
}

impl FieldOutcome {
    /// Total realized comprehensive cost.
    pub fn total_cost(&self) -> Cost {
        self.device_costs.iter().copied().sum()
    }

    /// Average realized comprehensive cost per device.
    ///
    /// # Panics
    ///
    /// Panics if there are no devices.
    pub fn average_cost(&self) -> Cost {
        assert!(!self.device_costs.is_empty(), "no devices measured");
        self.total_cost() / self.device_costs.len() as f64
    }

    /// Number of devices that did not receive their energy.
    pub fn unserved_count(&self) -> usize {
        self.served.iter().filter(|s| !**s).count()
    }

    /// Fraction of devices served, in `[0, 1]`.
    pub fn served_fraction(&self) -> f64 {
        if self.served.is_empty() {
            return 1.0;
        }
        1.0 - self.unserved_count() as f64 / self.served.len() as f64
    }

    /// Mean queueing delay across **served** devices.
    ///
    /// Devices that never reached service (no-shows, members of voided
    /// groups) have no queueing delay to report; averaging their zeros in
    /// would under-state the delay exactly when failures are common. This
    /// matches the `testbed.service_wait_s` telemetry timer, which also
    /// records served devices only. Returns zero when nobody was served.
    pub fn average_wait(&self) -> Seconds {
        let served_waits: Vec<Seconds> = self
            .device_wait
            .iter()
            .zip(&self.served)
            .filter(|(_, s)| **s)
            .map(|(w, _)| *w)
            .collect();
        if served_waits.is_empty() {
            return Seconds::ZERO;
        }
        served_waits.iter().copied().sum::<Seconds>() / served_waits.len() as f64
    }
}

#[derive(Debug, Clone, Copy)]
enum Ev {
    DeviceArrived {
        group: usize,
        local: usize,
    },
    ChargerArrived {
        group: usize,
    },
    ChargeDone {
        group: usize,
        local: usize,
    },
    /// A device breaks down halfway to its gathering point (trace only).
    DeviceNoShow {
        group: usize,
        local: usize,
    },
    /// A charger breaks down mid-leg heading to `group` (trace only).
    ChargerBrokeDown {
        group: usize,
    },
}

struct GroupState {
    charger_here: bool,
    busy: bool,
    served: usize,
    /// Arrival-ordered FIFO of unserved local member indices.
    ready: VecDeque<usize>,
    arrival_time: Vec<Option<SimTime>>,
}

/// Replays `schedule` under `noise` without hard failures,
/// deterministically per `seed`.
///
/// # Panics
///
/// Panics if the schedule does not validate against the problem (the
/// executor only replays well-formed plans).
pub fn execute(
    problem: &CcsProblem,
    schedule: &Schedule,
    sharing: &dyn CostSharing,
    noise: &NoiseModel,
    seed: u64,
) -> FieldOutcome {
    execute_with_failures(
        problem,
        schedule,
        sharing,
        noise,
        &FailureModel::none(),
        seed,
    )
}

/// Replays `schedule` under `noise` plus hard [`FailureModel`] failures.
///
/// Failure semantics: a device no-show turns around halfway (pays half its
/// realized moving cost, keeps owing its bill share, receives nothing); a
/// charger breakdown on a leg voids that hire and every later hire on the
/// charger's route (those bills are refunded, members only pay the trip).
///
/// # Panics
///
/// Panics if the schedule does not validate against the problem (the
/// executor only replays well-formed plans).
pub fn execute_with_failures(
    problem: &CcsProblem,
    schedule: &Schedule,
    sharing: &dyn CostSharing,
    noise: &NoiseModel,
    failures: &FailureModel,
    seed: u64,
) -> FieldOutcome {
    let _span = ccs_telemetry::span!("testbed_execute");
    noise.validate();
    failures.validate();
    schedule
        .validate(problem)
        .expect("executor requires a valid schedule");
    let n = problem.num_devices();
    let groups = schedule.groups();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);

    // --- Sample all noise factors upfront, in a fixed order, so the event
    // interleaving cannot perturb determinism. ---
    // Per device (global id order): detour, speed factor, efficiency factor.
    let mut dev_detour = vec![1.0; n];
    let mut dev_speed = vec![1.0; n];
    let mut dev_eff = vec![1.0; n];
    for i in 0..n {
        dev_detour[i] = noise.detour(&mut rng);
        dev_speed[i] = noise.speed(&mut rng);
        dev_eff[i] = noise.efficiency(&mut rng);
    }
    // Per group (schedule order): the charger leg that *ends* at this group.
    let mut leg_detour = vec![1.0; groups.len()];
    let mut leg_speed = vec![1.0; groups.len()];
    for g in 0..groups.len() {
        leg_detour[g] = noise.detour(&mut rng);
        leg_speed[g] = noise.speed(&mut rng);
    }
    // Hard failures, sampled in the same fixed order.
    let no_show: Vec<bool> = (0..n).map(|_| failures.device_no_show(&mut rng)).collect();
    let leg_break: Vec<bool> = (0..groups.len())
        .map(|_| failures.charger_breaks(&mut rng))
        .collect();

    // --- Charger itineraries: groups in schedule order per charger. ---
    let mut itinerary: BTreeMap<ChargerId, Vec<usize>> = BTreeMap::new();
    for (gi, g) in groups.iter().enumerate() {
        itinerary.entry(g.charger).or_default().push(gi);
    }
    // Two travel distances per group: the *billed* distance follows the
    // service contract (depot -> gathering point per hire, with detour),
    // while the *timed* leg chains from the charger's previous stop.
    // `reached[gi]` is false once the charger breaks on or before its leg.
    let mut bill_distance = vec![Meters::ZERO; groups.len()];
    let mut leg_distance = vec![Meters::ZERO; groups.len()];
    let mut reached = vec![true; groups.len()];
    for (&charger, gs) in &itinerary {
        let depot = problem.charger(charger).position();
        let mut from = depot;
        let mut alive = true;
        for &gi in gs {
            let to = groups[gi].gathering_point;
            bill_distance[gi] = depot.distance(&to) * leg_detour[gi];
            leg_distance[gi] = from.distance(&to) * leg_detour[gi];
            from = to;
            alive = alive && !leg_break[gi];
            reached[gi] = alive;
        }
    }

    // --- Seed the event queue. ---
    let mut queue: EventQueue<Ev> = EventQueue::new();
    let mut states: Vec<GroupState> = groups
        .iter()
        .map(|g| GroupState {
            charger_here: false,
            busy: false,
            served: 0,
            ready: VecDeque::new(),
            arrival_time: vec![None; g.members.len()],
        })
        .collect();

    // Arrivals a group is still waiting for (no-shows excluded).
    let mut expected: Vec<usize> = groups.iter().map(|g| g.members.len()).collect();
    let mut moving_cost = vec![Cost::ZERO; n];
    let mut final_positions: Vec<Point> = problem
        .scenario()
        .devices()
        .iter()
        .map(|d| d.position())
        .collect();
    for (gi, g) in groups.iter().enumerate() {
        for (local, &d) in g.members.iter().enumerate() {
            let dev = problem.device(d);
            let dist = dev.position().distance(&g.gathering_point) * dev_detour[d.index()];
            let speed = dev.speed() * dev_speed[d.index()];
            if no_show[d.index()] {
                // Broke down halfway: half the trip, never arrives.
                moving_cost[d.index()] = dev.move_cost_rate() * (dist * 0.5);
                final_positions[d.index()] = dev.position().lerp(&g.gathering_point, 0.5);
                expected[gi] -= 1;
                let breakdown = SimTime::new((dist * 0.5 / speed).value());
                queue.schedule(breakdown, Ev::DeviceNoShow { group: gi, local });
                continue;
            }
            moving_cost[d.index()] = dev.move_cost_rate() * dist;
            final_positions[d.index()] = g.gathering_point;
            let arrival = SimTime::new((dist / speed).value());
            queue.schedule(arrival, Ev::DeviceArrived { group: gi, local });
        }
    }
    for (&charger, gs) in &itinerary {
        let first = gs[0];
        let speed = problem.charger(charger).speed() * leg_speed[first];
        let travel = (leg_distance[first] / speed).value();
        if !reached[first] {
            // Broke down on the very first leg: estimate mid-leg failure.
            queue.schedule(
                SimTime::new(travel * 0.5),
                Ev::ChargerBrokeDown { group: first },
            );
            continue;
        }
        queue.schedule(SimTime::new(travel), Ev::ChargerArrived { group: first });
    }

    // --- Run. ---
    let mut wait = vec![Seconds::ZERO; n];
    let mut energy_transmitted = Joules::ZERO;
    let mut makespan = SimTime::ZERO;
    // Next-group lookup for charger chaining.
    let next_group: BTreeMap<usize, usize> = itinerary
        .values()
        .flat_map(|gs| gs.windows(2).map(|w| (w[0], w[1])))
        .collect();

    let mut served = vec![false; n];
    let chain = |queue: &mut EventQueue<Ev>, now: SimTime, group: usize| {
        if let Some(&next) = next_group.get(&group) {
            let speed = problem.charger(groups[group].charger).speed() * leg_speed[next];
            let travel = (leg_distance[next] / speed).value();
            if reached[next] {
                queue.schedule(now + travel, Ev::ChargerArrived { group: next });
            } else {
                // `group` was reached, so the break happened on this very
                // leg: estimate a mid-leg failure time for the trace.
                queue.schedule(now + travel * 0.5, Ev::ChargerBrokeDown { group: next });
            }
        }
    };
    let mut trace = Trace::new();
    let events_emitted = ccs_telemetry::counter!("testbed.events_emitted");
    while let Some((now, ev)) = queue.pop() {
        events_emitted.incr();
        // The realized timeline ends at the last event, whatever it is:
        // total-failure runs still spend real time travelling.
        makespan = makespan.max(now);
        match ev {
            Ev::DeviceArrived { group, local } => {
                trace.record(
                    now.seconds(),
                    TraceKind::DeviceArrived {
                        device: groups[group].members[local],
                    },
                );
                states[group].arrival_time[local] = Some(now);
                states[group].ready.push_back(local);
                try_start_service(
                    problem,
                    groups,
                    &mut states,
                    &mut queue,
                    group,
                    now,
                    &dev_eff,
                    &mut wait,
                    &mut trace,
                );
            }
            Ev::ChargerArrived { group } => {
                trace.record(
                    now.seconds(),
                    TraceKind::ChargerArrived {
                        charger: groups[group].charger,
                        group,
                    },
                );
                states[group].charger_here = true;
                if expected[group] == 0 {
                    // Everyone no-showed: move on immediately.
                    chain(&mut queue, now, group);
                } else {
                    try_start_service(
                        problem,
                        groups,
                        &mut states,
                        &mut queue,
                        group,
                        now,
                        &dev_eff,
                        &mut wait,
                        &mut trace,
                    );
                }
            }
            Ev::ChargeDone { group, local } => {
                let g = &groups[group];
                let d = g.members[local];
                trace.record(now.seconds(), TraceKind::ServiceCompleted { device: d });
                energy_transmitted += problem.device(d).demand() / dev_eff[d.index()];
                served[d.index()] = true;
                states[group].busy = false;
                states[group].served += 1;
                if states[group].served == expected[group] {
                    // Group complete: chain to the charger's next stop.
                    chain(&mut queue, now, group);
                } else {
                    try_start_service(
                        problem,
                        groups,
                        &mut states,
                        &mut queue,
                        group,
                        now,
                        &dev_eff,
                        &mut wait,
                        &mut trace,
                    );
                }
            }
            Ev::DeviceNoShow { group, local } => {
                trace.record(
                    now.seconds(),
                    TraceKind::DeviceNoShow {
                        device: groups[group].members[local],
                    },
                );
            }
            Ev::ChargerBrokeDown { group } => {
                trace.record(
                    now.seconds(),
                    TraceKind::ChargerBrokeDown {
                        charger: groups[group].charger,
                        group,
                    },
                );
            }
        }
    }

    // --- Realized billing and shares. ---
    let mut device_costs = vec![Cost::ZERO; n];
    let mut group_bills = vec![Cost::ZERO; groups.len()];
    for (gi, g) in groups.iter().enumerate() {
        if !reached[gi] {
            // Charger never showed: the hire is refunded; members only pay
            // the trip they already made.
            for &d in &g.members {
                device_costs[d.index()] = moving_cost[d.index()];
            }
            continue;
        }
        let c = problem.charger(g.charger);
        let realized_bill = ccs_core::cost::GroupBill {
            base_fee: c.base_fee(),
            charger_travel: c.travel_cost_rate() * bill_distance[gi],
            energy: g
                .members
                .iter()
                .map(|&d| {
                    if served[d.index()] {
                        (problem.device(d).demand() / dev_eff[d.index()]) * c.energy_price()
                    } else {
                        Cost::ZERO // no-show: nothing transmitted, nothing billed
                    }
                })
                .collect(),
            congestion: c.occupancy_rate()
                * problem.params().congestion_curve.eval(g.members.len()),
        };
        group_bills[gi] = realized_bill.total();
        let shares = sharing.shares(
            problem,
            g.charger,
            &g.members,
            &g.gathering_point,
            &realized_bill,
        );
        for (local, &d) in g.members.iter().enumerate() {
            device_costs[d.index()] = shares[local] + moving_cost[d.index()];
        }
    }

    let wait_timer = ccs_telemetry::timer!("testbed.service_wait_s");
    for (i, w) in wait.iter().enumerate() {
        if served[i] {
            wait_timer.record_secs(w.value());
        }
    }

    FieldOutcome {
        device_costs,
        device_wait: wait,
        group_bills,
        makespan: Seconds::new(makespan.seconds()),
        energy_transmitted,
        served,
        final_positions,
        trace,
    }
}

#[allow(clippy::too_many_arguments)]
fn try_start_service(
    problem: &CcsProblem,
    groups: &[ccs_core::schedule::GroupPlan],
    states: &mut [GroupState],
    queue: &mut EventQueue<Ev>,
    group: usize,
    now: SimTime,
    dev_eff: &[f64],
    wait: &mut [Seconds],
    trace: &mut Trace,
) {
    let st = &mut states[group];
    if !st.charger_here || st.busy || st.ready.is_empty() {
        return;
    }
    let local = st.ready.pop_front().expect("checked non-empty above");
    st.busy = true;
    let g = &groups[group];
    let d = g.members[local];
    let dev = problem.device(d);
    let arrived = st.arrival_time[local].expect("ready implies arrived");
    wait[d.index()] = Seconds::new(now - arrived);
    trace.record(now.seconds(), TraceKind::ServiceStarted { device: d });

    let c = problem.charger(g.charger);
    let link = Meters::new(LINK_DISTANCE_M).min(c.wpt().range * 0.9);
    let power = c.wpt().effective_power(link);
    assert!(
        power.value() > 0.0,
        "charger {} cannot deliver power at the service link distance",
        g.charger
    );
    // The coil under-performs by the efficiency factor: transmitting
    // demand/eff at nominal effective power takes demand/(eff · P).
    let duration = (dev.demand() / dev_eff[d.index()]) / power;
    queue.schedule(now + duration.value(), Ev::ChargeDone { group, local });
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccs_core::algo::{ccsa, noncooperation, CcsaOptions};
    use ccs_core::sharing::EqualShare;
    use ccs_wrsn::scenario::ScenarioGenerator;

    fn problem(seed: u64, n: usize, m: usize) -> CcsProblem {
        CcsProblem::new(
            ScenarioGenerator::new(seed)
                .devices(n)
                .chargers(m)
                .field_side(60.0)
                .generate(),
        )
    }

    #[test]
    fn ideal_noise_reproduces_planned_costs() {
        let p = problem(1, 10, 3);
        let s = ccsa(&p, &EqualShare, CcsaOptions::default());
        let out = execute(&p, &s, &EqualShare, &NoiseModel::ideal(), 0);
        for d in p.scenario().device_ids() {
            let planned = s.device_cost(d).unwrap();
            let realized = out.device_costs[d.index()];
            assert!(
                (planned - realized).abs() < Cost::new(1e-6),
                "device {d}: planned {planned} vs realized {realized}"
            );
        }
        assert!((out.total_cost() - s.total_cost()).abs() < Cost::new(1e-6));
    }

    #[test]
    fn ideal_noise_transmits_exactly_the_demand() {
        let p = problem(2, 8, 3);
        let s = noncooperation(&p, &EqualShare);
        let out = execute(&p, &s, &EqualShare, &NoiseModel::ideal(), 0);
        let demand = p.scenario().total_demand();
        assert!((out.energy_transmitted - demand).abs() < Joules::new(1e-6));
    }

    #[test]
    fn field_noise_inflates_costs() {
        let p = problem(3, 10, 3);
        let s = ccsa(&p, &EqualShare, CcsaOptions::default());
        let ideal = execute(&p, &s, &EqualShare, &NoiseModel::ideal(), 0);
        let noisy = execute(&p, &s, &EqualShare, &NoiseModel::field(), 42);
        assert!(
            noisy.total_cost() > ideal.total_cost(),
            "detours and efficiency losses must cost money: {} vs {}",
            noisy.total_cost(),
            ideal.total_cost()
        );
        assert!(noisy.energy_transmitted > ideal.energy_transmitted);
    }

    #[test]
    fn replay_is_deterministic_per_seed() {
        let p = problem(4, 9, 3);
        let s = ccsa(&p, &EqualShare, CcsaOptions::default());
        let a = execute(&p, &s, &EqualShare, &NoiseModel::field(), 7);
        let b = execute(&p, &s, &EqualShare, &NoiseModel::field(), 7);
        assert_eq!(a.device_costs, b.device_costs);
        assert_eq!(a.makespan, b.makespan);
        let c = execute(&p, &s, &EqualShare, &NoiseModel::field(), 8);
        assert_ne!(
            a.device_costs, c.device_costs,
            "different seed, different run"
        );
    }

    #[test]
    fn grouped_devices_can_wait_for_the_coil() {
        // Force one big group: all devices in one cluster, huge base fees.
        use ccs_wrsn::scenario::{ParamRange, Placement};
        let scenario = ScenarioGenerator::new(5)
            .devices(6)
            .chargers(2)
            .field_side(30.0)
            .device_placement(Placement::Clustered {
                count: 1,
                sigma: 2.0,
            })
            .base_fee_range(ParamRange::fixed(80.0))
            .generate();
        let p = CcsProblem::new(scenario);
        let s = ccsa(&p, &EqualShare, CcsaOptions::default());
        assert!(s.groups().iter().any(|g| g.members.len() >= 3));
        let out = execute(&p, &s, &EqualShare, &NoiseModel::ideal(), 0);
        // Sequential service: someone must have waited.
        assert!(
            out.device_wait.iter().any(|w| *w > Seconds::ZERO),
            "sequential service implies queueing"
        );
        assert!(out.makespan > Seconds::ZERO);
        assert!(out.average_wait() >= Seconds::ZERO);
    }

    #[test]
    fn chained_charger_serves_groups_in_order() {
        // Many singleton groups under NCP often share a charger; the
        // executor must chain legs and still finish.
        let p = problem(6, 8, 2);
        let s = noncooperation(&p, &EqualShare);
        let out = execute(&p, &s, &EqualShare, &NoiseModel::ideal(), 0);
        assert!(out.makespan > Seconds::ZERO);
        assert_eq!(out.group_bills.len(), s.groups().len());
        assert!(out.group_bills.iter().all(|b| *b > Cost::ZERO));
    }

    #[test]
    fn noisy_replay_keeps_cooperative_advantage() {
        // The field-experiment headline: cooperation still wins under noise.
        let p = problem(7, 12, 4);
        let coop = ccsa(&p, &EqualShare, CcsaOptions::default());
        let solo = noncooperation(&p, &EqualShare);
        let mut coop_total = Cost::ZERO;
        let mut solo_total = Cost::ZERO;
        for seed in 0..10 {
            coop_total += execute(&p, &coop, &EqualShare, &NoiseModel::field(), seed).total_cost();
            solo_total += execute(&p, &solo, &EqualShare, &NoiseModel::field(), seed).total_cost();
        }
        assert!(
            coop_total < solo_total,
            "cooperative schedules must stay ahead under noise"
        );
    }
}

#[cfg(test)]
mod failure_sim_tests {
    use super::*;
    use ccs_core::algo::{ccsa, noncooperation, CcsaOptions};
    use ccs_core::sharing::EqualShare;
    use ccs_wrsn::scenario::ScenarioGenerator;

    fn problem(seed: u64, n: usize, m: usize) -> CcsProblem {
        CcsProblem::new(
            ScenarioGenerator::new(seed)
                .devices(n)
                .chargers(m)
                .field_side(60.0)
                .generate(),
        )
    }

    #[test]
    fn no_failures_serves_everyone() {
        let p = problem(1, 10, 3);
        let s = ccsa(&p, &EqualShare, CcsaOptions::default());
        let out = execute(&p, &s, &EqualShare, &NoiseModel::ideal(), 0);
        assert_eq!(out.unserved_count(), 0);
        assert_eq!(out.served_fraction(), 1.0);
        assert!(out.served.iter().all(|s| *s));
    }

    #[test]
    fn certain_breakdown_serves_nobody() {
        let p = problem(2, 8, 3);
        let s = ccsa(&p, &EqualShare, CcsaOptions::default());
        let failures = FailureModel {
            charger_breakdown_prob: 1.0,
            device_no_show_prob: 0.0,
        };
        let out = execute_with_failures(&p, &s, &EqualShare, &NoiseModel::ideal(), &failures, 0);
        assert_eq!(out.served_fraction(), 0.0);
        assert_eq!(out.energy_transmitted, Joules::ZERO);
        // Hires refunded: devices pay their trip only.
        for (gi, _) in s.groups().iter().enumerate() {
            assert_eq!(out.group_bills[gi], Cost::ZERO);
        }
        assert!(out.total_cost() > Cost::ZERO, "trips were still made");
        assert!(out.total_cost() < s.total_cost(), "refund beats full bill");
        // The failures are visible in the trace: one breakdown per charger
        // (a charger breaks once, on its first leg under prob 1).
        let breakdowns = out
            .trace
            .events()
            .iter()
            .filter(|e| matches!(e.kind, TraceKind::ChargerBrokeDown { .. }))
            .count();
        assert_eq!(breakdowns, s.chargers_used(), "one breakdown per charger");
        // Devices still travelled for real time: makespan tracks the last
        // event even though no charge ever completed.
        assert!(
            out.makespan > Seconds::ZERO,
            "total failure still takes time, got {}",
            out.makespan
        );
    }

    #[test]
    fn certain_no_show_bills_no_energy() {
        let p = problem(3, 6, 2);
        let s = noncooperation(&p, &EqualShare);
        let failures = FailureModel {
            charger_breakdown_prob: 0.0,
            device_no_show_prob: 1.0,
        };
        let out = execute_with_failures(&p, &s, &EqualShare, &NoiseModel::ideal(), &failures, 0);
        assert_eq!(out.served_fraction(), 0.0);
        assert_eq!(out.energy_transmitted, Joules::ZERO);
        // Bills still include the base fee and travel (the hire happened),
        // but no energy items.
        for (gi, g) in s.groups().iter().enumerate() {
            assert!(out.group_bills[gi] > Cost::ZERO);
            assert!(out.group_bills[gi] < g.bill.total());
        }
        // Every no-show is visible in the trace.
        let no_shows = out
            .trace
            .events()
            .iter()
            .filter(|e| matches!(e.kind, TraceKind::DeviceNoShow { .. }))
            .count();
        assert_eq!(no_shows, p.num_devices(), "one no-show event per device");
        assert!(out.makespan > Seconds::ZERO, "half-trips still take time");
    }

    #[test]
    fn average_wait_ignores_never_served_devices() {
        // Breakdown-heavy run: many devices are never served. Their zero
        // "waits" must not dilute the queueing statistic of the devices
        // that actually queued at a coil.
        let mut checked = 0;
        for seed in 0..20u64 {
            let p = problem(seed, 12, 4);
            let s = ccsa(&p, &EqualShare, CcsaOptions::default());
            let failures = FailureModel {
                charger_breakdown_prob: 0.5,
                device_no_show_prob: 0.2,
            };
            let out =
                execute_with_failures(&p, &s, &EqualShare, &NoiseModel::field(), &failures, seed);
            let served: Vec<Seconds> = out
                .device_wait
                .iter()
                .zip(&out.served)
                .filter(|(_, s)| **s)
                .map(|(w, _)| *w)
                .collect();
            if served.is_empty() || out.unserved_count() == 0 {
                continue; // nothing to distinguish this seed
            }
            let served_mean = served.iter().copied().sum::<Seconds>() / served.len() as f64;
            assert!(
                (out.average_wait() - served_mean).abs() < Seconds::new(1e-9),
                "seed {seed}: average_wait must average served devices only"
            );
            let diluted =
                out.device_wait.iter().copied().sum::<Seconds>() / out.device_wait.len() as f64;
            assert!(
                out.average_wait() >= diluted,
                "seed {seed}: filtering zeros can only raise the mean"
            );
            checked += 1;
        }
        assert!(checked > 0, "at least one seed must exercise the filter");
    }

    #[test]
    fn nobody_served_reports_zero_wait() {
        let p = problem(5, 6, 2);
        let s = ccsa(&p, &EqualShare, CcsaOptions::default());
        let failures = FailureModel {
            charger_breakdown_prob: 1.0,
            device_no_show_prob: 0.0,
        };
        let out = execute_with_failures(&p, &s, &EqualShare, &NoiseModel::ideal(), &failures, 0);
        assert_eq!(out.served_fraction(), 0.0);
        assert_eq!(out.average_wait(), Seconds::ZERO);
    }

    #[test]
    fn partial_failures_are_deterministic_and_in_between() {
        let p = problem(4, 12, 4);
        let s = ccsa(&p, &EqualShare, CcsaOptions::default());
        let failures = FailureModel {
            charger_breakdown_prob: 0.2,
            device_no_show_prob: 0.1,
        };
        let a = execute_with_failures(&p, &s, &EqualShare, &NoiseModel::field(), &failures, 9);
        let b = execute_with_failures(&p, &s, &EqualShare, &NoiseModel::field(), &failures, 9);
        assert_eq!(a.served, b.served);
        assert_eq!(a.device_costs, b.device_costs);
        assert!(a.served_fraction() <= 1.0);
    }

    #[test]
    fn cooperation_is_more_robust_to_breakdowns() {
        // NCP makes many hires (many legs to break); CCSA makes few. Under
        // the same breakdown rate, CCSA should keep a higher served
        // fraction on average.
        let failures = FailureModel {
            charger_breakdown_prob: 0.15,
            device_no_show_prob: 0.0,
        };
        let mut coop_served = 0.0;
        let mut solo_served = 0.0;
        let trials = 20u64;
        for seed in 0..trials {
            let p = problem(seed, 12, 4);
            let coop = ccsa(&p, &EqualShare, CcsaOptions::default());
            let solo = noncooperation(&p, &EqualShare);
            coop_served += execute_with_failures(
                &p,
                &coop,
                &EqualShare,
                &NoiseModel::ideal(),
                &failures,
                seed,
            )
            .served_fraction();
            solo_served += execute_with_failures(
                &p,
                &solo,
                &EqualShare,
                &NoiseModel::ideal(),
                &failures,
                seed,
            )
            .served_fraction();
        }
        assert!(
            coop_served >= solo_served,
            "cooperative served {coop_served} vs solo {solo_served} over {trials} trials"
        );
    }
}

#[cfg(test)]
mod trace_integration_tests {
    use super::*;
    use crate::trace::TraceKind;
    use ccs_core::algo::{ccsa, CcsaOptions};
    use ccs_core::sharing::EqualShare;
    use ccs_wrsn::scenario::ScenarioGenerator;

    #[test]
    fn trace_covers_every_served_device() {
        let p = CcsProblem::new(
            ScenarioGenerator::new(2)
                .devices(8)
                .chargers(3)
                .field_side(60.0)
                .generate(),
        );
        let s = ccsa(&p, &EqualShare, CcsaOptions::default());
        let out = execute(&p, &s, &EqualShare, &NoiseModel::ideal(), 0);
        for d in p.scenario().device_ids() {
            let (arrived, started, completed) = out.trace.device_phases(d);
            assert!(arrived.is_some(), "{d} must arrive");
            assert!(started.is_some(), "{d} must start charging");
            assert!(completed.is_some(), "{d} must finish");
            assert!(
                arrived <= started && started <= completed,
                "{d} phases ordered"
            );
        }
        // One charger arrival per group.
        let charger_arrivals = out
            .trace
            .events()
            .iter()
            .filter(|e| matches!(e.kind, TraceKind::ChargerArrived { .. }))
            .count();
        assert_eq!(charger_arrivals, s.groups().len());
        // The timeline renders for all devices.
        let timeline = out.trace.render_timeline(8, 60);
        assert_eq!(timeline.lines().count(), 9);
    }

    #[test]
    fn no_shows_never_arrive_in_the_trace() {
        let p = CcsProblem::new(
            ScenarioGenerator::new(3)
                .devices(5)
                .chargers(2)
                .field_side(50.0)
                .generate(),
        );
        let s = ccsa(&p, &EqualShare, CcsaOptions::default());
        let failures = FailureModel {
            charger_breakdown_prob: 0.0,
            device_no_show_prob: 1.0,
        };
        let out = execute_with_failures(&p, &s, &EqualShare, &NoiseModel::ideal(), &failures, 0);
        for d in p.scenario().device_ids() {
            let (arrived, started, _) = out.trace.device_phases(d);
            assert!(arrived.is_none(), "{d} no-showed");
            assert!(started.is_none());
            // ... but the breakdown itself is on the record.
            assert!(
                out.trace
                    .device_events(d)
                    .iter()
                    .any(|e| matches!(e.kind, TraceKind::DeviceNoShow { device } if device == d)),
                "{d}'s no-show must be traced"
            );
        }
    }

    #[test]
    fn final_positions_reflect_realized_travel() {
        use ccs_wrsn::units::Meters;
        let p = CcsProblem::new(
            ScenarioGenerator::new(4)
                .devices(6)
                .chargers(2)
                .field_side(50.0)
                .generate(),
        );
        let s = ccsa(&p, &EqualShare, CcsaOptions::default());
        // No failures: everyone ends at its group's gathering point.
        let out = execute(&p, &s, &EqualShare, &NoiseModel::ideal(), 0);
        for g in s.groups() {
            for &d in &g.members {
                assert_eq!(out.final_positions[d.index()], g.gathering_point);
            }
        }
        // All no-show: everyone strands exactly halfway.
        let failures = FailureModel {
            charger_breakdown_prob: 0.0,
            device_no_show_prob: 1.0,
        };
        let out = execute_with_failures(&p, &s, &EqualShare, &NoiseModel::ideal(), &failures, 0);
        for g in s.groups() {
            for &d in &g.members {
                let start = p.device(d).position();
                let half = start.distance(&g.gathering_point) * 0.5;
                let got = out.final_positions[d.index()].distance(&start);
                assert!(
                    (got - half).abs() < Meters::new(1e-9),
                    "{d} should strand halfway: {got} vs {half}"
                );
                assert!(p
                    .scenario()
                    .field()
                    .contains(&out.final_positions[d.index()]));
            }
        }
    }
}
