//! Stochastic imperfections of the physical testbed.
//!
//! The planner's cost model assumes straight-line travel at nominal speed
//! and nominal WPT efficiency. Real robots detour around obstacles, drive
//! at variable speed, and real coils under-perform. [`NoiseModel`] captures
//! these as multiplicative factors:
//!
//! * **detour factor** `>= 1` — realized path length / straight-line
//!   distance (affects moving costs and billed charger travel);
//! * **speed factor** — realized speed / nominal (affects timing only);
//! * **efficiency factor** `<= 1` — realized WPT end-to-end efficiency /
//!   nominal (the charger transmits — and bills — `demand / factor`).
//!
//! Factors are sampled from truncated Gaussians around configurable means,
//! deterministically per seed.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Noise configuration of a testbed run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseModel {
    /// Mean detour factor (>= 1), e.g. `1.25` = paths 25% longer than
    /// straight lines.
    pub detour_mean: f64,
    /// Standard deviation of the detour factor.
    pub detour_std: f64,
    /// Standard deviation of the speed factor (mean 1).
    pub speed_std: f64,
    /// Mean efficiency factor (<= 1), e.g. `0.85`.
    pub efficiency_mean: f64,
    /// Standard deviation of the efficiency factor.
    pub efficiency_std: f64,
}

impl NoiseModel {
    /// The noiseless model: every factor exactly nominal. Executing a
    /// schedule under `ideal()` must reproduce the planner's costs.
    pub fn ideal() -> Self {
        NoiseModel {
            detour_mean: 1.0,
            detour_std: 0.0,
            speed_std: 0.0,
            efficiency_mean: 1.0,
            efficiency_std: 0.0,
        }
    }

    /// Field conditions calibrated to a small indoor robot testbed:
    /// 25% mean detours, 10% speed jitter, 85% mean relative efficiency.
    pub fn field() -> Self {
        NoiseModel {
            detour_mean: 1.25,
            detour_std: 0.10,
            speed_std: 0.10,
            efficiency_mean: 0.85,
            efficiency_std: 0.05,
        }
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics on non-finite values, `detour_mean < 1`, negative standard
    /// deviations, or `efficiency_mean` outside `(0, 1]`.
    pub fn validate(&self) {
        assert!(
            self.detour_mean.is_finite() && self.detour_mean >= 1.0,
            "detour mean must be >= 1"
        );
        assert!(
            self.detour_std.is_finite() && self.detour_std >= 0.0,
            "detour std must be >= 0"
        );
        assert!(
            self.speed_std.is_finite() && self.speed_std >= 0.0,
            "speed std must be >= 0"
        );
        assert!(
            self.efficiency_mean > 0.0 && self.efficiency_mean <= 1.0,
            "efficiency mean must be in (0, 1]"
        );
        assert!(
            self.efficiency_std.is_finite() && self.efficiency_std >= 0.0,
            "efficiency std must be >= 0"
        );
    }

    /// Samples a detour factor (clamped to `[1, mean + 4σ]`).
    pub fn detour<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        gaussian(rng, self.detour_mean, self.detour_std)
            .clamp(1.0, self.detour_mean + 4.0 * self.detour_std + 1e-12)
    }

    /// Samples a speed factor (clamped to `[0.2, 2]`).
    pub fn speed<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        gaussian(rng, 1.0, self.speed_std).clamp(0.2, 2.0)
    }

    /// Samples an efficiency factor (clamped to `[0.3, 1]`).
    pub fn efficiency<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        gaussian(rng, self.efficiency_mean, self.efficiency_std).clamp(0.3, 1.0)
    }
}

impl Default for NoiseModel {
    fn default() -> Self {
        NoiseModel::field()
    }
}

/// Box–Muller Gaussian sample (avoids pulling in a distributions crate).
fn gaussian<R: Rng + ?Sized>(rng: &mut R, mean: f64, std: f64) -> f64 {
    if std == 0.0 {
        return mean;
    }
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    mean + std * z
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn ideal_model_is_deterministic_nominal() {
        let m = NoiseModel::ideal();
        m.validate();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        for _ in 0..10 {
            assert_eq!(m.detour(&mut rng), 1.0);
            assert_eq!(m.speed(&mut rng), 1.0);
            assert_eq!(m.efficiency(&mut rng), 1.0);
        }
    }

    #[test]
    fn field_model_samples_within_clamps() {
        let m = NoiseModel::field();
        m.validate();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..1000 {
            let d = m.detour(&mut rng);
            assert!((1.0..=2.0).contains(&d), "detour {d} out of range");
            let s = m.speed(&mut rng);
            assert!((0.2..=2.0).contains(&s));
            let e = m.efficiency(&mut rng);
            assert!((0.3..=1.0).contains(&e));
        }
    }

    #[test]
    fn field_means_are_roughly_right() {
        let m = NoiseModel::field();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let n = 20_000;
        let mean_detour: f64 = (0..n).map(|_| m.detour(&mut rng)).sum::<f64>() / n as f64;
        // Clamping at 1.0 shifts the mean slightly above 1.25.
        assert!(
            (1.20..1.32).contains(&mean_detour),
            "mean detour {mean_detour}"
        );
        let mean_eff: f64 = (0..n).map(|_| m.efficiency(&mut rng)).sum::<f64>() / n as f64;
        assert!(
            (0.80..0.90).contains(&mean_eff),
            "mean efficiency {mean_eff}"
        );
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let m = NoiseModel::field();
        let a: Vec<f64> = {
            let mut rng = ChaCha8Rng::seed_from_u64(7);
            (0..20).map(|_| m.detour(&mut rng)).collect()
        };
        let b: Vec<f64> = {
            let mut rng = ChaCha8Rng::seed_from_u64(7);
            (0..20).map(|_| m.detour(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "detour mean must be >= 1")]
    fn rejects_shortcut_detours() {
        NoiseModel {
            detour_mean: 0.5,
            ..NoiseModel::field()
        }
        .validate();
    }

    #[test]
    fn serde_round_trip() {
        let m = NoiseModel::field();
        let json = serde_json::to_string(&m).unwrap();
        let back: NoiseModel = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }
}

/// Hard failures of a field run, on top of the soft [`NoiseModel`]
/// imperfections.
///
/// * **charger breakdown** — sampled per itinerary leg; a broken charger
///   never reaches that group (nor any later group on its route). Affected
///   hires are refunded (no bill), but members have already travelled.
/// * **device no-show** — sampled per device; the device breaks down
///   halfway to the gathering point: it pays half its moving cost, receives
///   no energy, and still owes its bill share (it booked the service).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FailureModel {
    /// Probability a charger breaks down on any single travel leg.
    pub charger_breakdown_prob: f64,
    /// Probability a device fails to reach the gathering point.
    pub device_no_show_prob: f64,
}

impl FailureModel {
    /// No failures at all (the default for plain replays).
    pub fn none() -> Self {
        FailureModel {
            charger_breakdown_prob: 0.0,
            device_no_show_prob: 0.0,
        }
    }

    /// Validates probabilities.
    ///
    /// # Panics
    ///
    /// Panics if either probability is outside `[0, 1]`.
    pub fn validate(&self) {
        assert!(
            (0.0..=1.0).contains(&self.charger_breakdown_prob),
            "charger breakdown probability must be in [0, 1]"
        );
        assert!(
            (0.0..=1.0).contains(&self.device_no_show_prob),
            "device no-show probability must be in [0, 1]"
        );
    }

    /// Bernoulli sample of a charger breakdown on one leg.
    pub fn charger_breaks<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        self.charger_breakdown_prob > 0.0 && rng.gen_range(0.0..1.0) < self.charger_breakdown_prob
    }

    /// Bernoulli sample of a device no-show.
    pub fn device_no_show<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        self.device_no_show_prob > 0.0 && rng.gen_range(0.0..1.0) < self.device_no_show_prob
    }
}

impl Default for FailureModel {
    fn default() -> Self {
        FailureModel::none()
    }
}

#[cfg(test)]
mod failure_tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn none_never_fails() {
        let f = FailureModel::none();
        f.validate();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        for _ in 0..100 {
            assert!(!f.charger_breaks(&mut rng));
            assert!(!f.device_no_show(&mut rng));
        }
    }

    #[test]
    fn rates_are_roughly_respected() {
        let f = FailureModel {
            charger_breakdown_prob: 0.3,
            device_no_show_prob: 0.1,
        };
        f.validate();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let n = 10_000;
        let breaks = (0..n).filter(|_| f.charger_breaks(&mut rng)).count() as f64 / n as f64;
        assert!((0.27..0.33).contains(&breaks), "observed {breaks}");
        let shows = (0..n).filter(|_| f.device_no_show(&mut rng)).count() as f64 / n as f64;
        assert!((0.08..0.12).contains(&shows), "observed {shows}");
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1]")]
    fn rejects_bad_probabilities() {
        FailureModel {
            charger_breakdown_prob: 1.5,
            device_no_show_prob: 0.0,
        }
        .validate();
    }
}
