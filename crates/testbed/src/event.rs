//! A minimal discrete-event simulation kernel.
//!
//! [`EventQueue`] is a time-ordered priority queue with deterministic
//! FIFO tie-breaking for simultaneous events. [`SimTime`] wraps `f64`
//! seconds with a total order (no NaNs admitted), so the queue can be a
//! real `BinaryHeap`.
//!
//! # Examples
//!
//! ```
//! use ccs_testbed::event::{EventQueue, SimTime};
//!
//! let mut q = EventQueue::new();
//! q.schedule(SimTime::new(2.0), "second");
//! q.schedule(SimTime::new(1.0), "first");
//! q.schedule(SimTime::new(2.0), "third"); // FIFO among ties
//! let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
//! assert_eq!(order, vec!["first", "second", "third"]);
//! ```

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;
use std::ops::{Add, Sub};

/// Simulation time in seconds; totally ordered, NaN-free by construction.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SimTime(f64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates a time point.
    ///
    /// # Panics
    ///
    /// Panics if `seconds` is NaN or negative (simulation time is a clock).
    pub fn new(seconds: f64) -> Self {
        assert!(
            seconds.is_finite() && seconds >= 0.0,
            "simulation time must be finite and nonnegative, got {seconds}"
        );
        SimTime(seconds)
    }

    /// Seconds since simulation start.
    #[inline]
    pub fn seconds(self) -> f64 {
        self.0
    }

    /// The later of two times.
    #[inline]
    pub fn max(self, other: Self) -> Self {
        if other.0 > self.0 {
            other
        } else {
            self
        }
    }
}

impl Eq for SimTime {}

impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl PartialOrd for SimTime {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Add<f64> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: f64) -> SimTime {
        SimTime::new(self.0 + rhs)
    }
}

impl Sub for SimTime {
    type Output = f64;
    fn sub(self, rhs: SimTime) -> f64 {
        self.0 - rhs.0
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}s", self.0)
    }
}

/// A deterministic discrete-event queue.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
    now: SimTime,
}

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time.cmp(&other.time).then(self.seq.cmp(&other.seq))
    }
}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Schedules `event` at absolute time `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is before the current simulation time (causality).
    pub fn schedule(&mut self, time: SimTime, event: E) {
        assert!(
            time >= self.now,
            "cannot schedule into the past: {time} < {}",
            self.now
        );
        self.heap.push(Reverse(Entry {
            time,
            seq: self.seq,
            event,
        }));
        self.seq += 1;
    }

    /// Pops the earliest event, advancing the clock to it.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let Reverse(entry) = self.heap.pop()?;
        self.now = entry.time;
        Some((entry.time, entry.event))
    }

    /// The current simulation time (time of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue has no pending events.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::new(3.0), 'c');
        q.schedule(SimTime::new(1.0), 'a');
        q.schedule(SimTime::new(2.0), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..5 {
            q.schedule(SimTime::new(1.0), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), SimTime::ZERO);
        q.schedule(SimTime::new(5.0), ());
        q.pop();
        assert_eq!(q.now(), SimTime::new(5.0));
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn rejects_past_events() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::new(5.0), ());
        q.pop();
        q.schedule(SimTime::new(1.0), ());
    }

    #[test]
    fn events_scheduled_during_processing_interleave() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::new(1.0), "first");
        let (t, _) = q.pop().unwrap();
        q.schedule(t + 0.5, "followup");
        q.schedule(t + 0.2, "sooner");
        let (_, e1) = q.pop().unwrap();
        let (_, e2) = q.pop().unwrap();
        assert_eq!((e1, e2), ("sooner", "followup"));
    }

    #[test]
    fn sim_time_arithmetic() {
        let a = SimTime::new(2.0);
        let b = a + 3.0;
        assert_eq!(b.seconds(), 5.0);
        assert_eq!(b - a, 3.0);
        assert_eq!(a.max(b), b);
        assert_eq!(format!("{a}"), "t=2.000s");
    }

    #[test]
    #[should_panic(expected = "finite and nonnegative")]
    fn rejects_negative_time() {
        let _ = SimTime::new(-1.0);
    }
}
