//! # ccs-coalition — coalition-formation game engine
//!
//! The game-theoretic substrate behind CCSGA in the Cooperative Charging as
//! Service reproduction: a [`partition::Partition`] type with stable
//! coalition handles, the [`game::HedonicGame`] trait (cost-based hedonic
//! preferences plus feasibility), an iterated-switch [`engine`] with three
//! switch rules (selfish-with-history — the paper's rule — plus consent and
//! utilitarian variants for ablations), and an independent Nash-stability
//! checker in [`stability`].
//!
//! # Example
//!
//! ```
//! use ccs_coalition::prelude::*;
//!
//! // Three co-located players sharing a fee of 6: they end up together.
//! let distance = vec![vec![0.0; 3]; 3];
//! let game = FeeSharingGame::new(6.0, distance, 3);
//! let report = run(&game, Partition::singletons(3), EngineOptions::default());
//! assert!(report.converged);
//! assert_eq!(report.partition.num_coalitions(), 1);
//! assert!(report.nash_stable);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod engine;
pub mod fasthash;
pub mod game;
pub mod partition;
pub mod stability;

/// Convenient glob import of the most commonly used items.
pub mod prelude {
    pub use crate::cache::CoalitionCache;
    pub use crate::engine::{run, ConvergenceReport, EngineOptions, SwitchRule};
    pub use crate::game::{FeeSharingGame, HedonicGame};
    pub use crate::partition::{CoalitionId, Partition};
    pub use crate::stability::{find_blocking_move, is_nash_stable, BlockingMove};
}
