//! Nash-stability checking for coalition structures.
//!
//! A partition is **Nash-stable** when no single player can strictly lower
//! its own cost by a feasible unilateral deviation — joining another
//! existing coalition or splitting off alone. This is the equilibrium
//! concept the paper's CCSGA converges to; the checker here is rule-agnostic
//! (it ignores switch histories and consent), so a `true` answer certifies a
//! pure Nash equilibrium of the underlying game.

use crate::game::HedonicGame;
use crate::partition::{CoalitionId, Partition};
use std::collections::BTreeSet;

/// A deviation that would strictly benefit a player.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockingMove {
    /// The player who wants to deviate.
    pub player: usize,
    /// Where it wants to go (`None` = split off into a singleton).
    pub target: Option<CoalitionId>,
    /// Its current cost.
    pub current_cost: f64,
    /// Its cost after the deviation.
    pub new_cost: f64,
}

/// Finds a blocking move if one exists (players and targets scanned in
/// deterministic index order; the first strict improvement is returned).
pub fn find_blocking_move<G: HedonicGame>(
    game: &G,
    partition: &Partition,
    epsilon: f64,
) -> Option<BlockingMove> {
    let n = game.num_players();
    let coalition_count = partition.num_coalitions();
    for player in 0..n {
        let from_id = partition.coalition_of(player);
        let from_members = partition.members(from_id);
        let current_cost = game.player_cost(player, from_members);

        for (id, members) in partition.coalitions() {
            if id == from_id {
                continue;
            }
            let mut joined: BTreeSet<usize> = members.clone();
            joined.insert(player);
            if !game.coalition_feasible(&joined) {
                continue;
            }
            let new_cost = game.player_cost(player, &joined);
            if new_cost < current_cost - epsilon {
                return Some(BlockingMove {
                    player,
                    target: Some(id),
                    current_cost,
                    new_cost,
                });
            }
        }

        if from_members.len() > 1
            && game
                .max_coalitions()
                .is_none_or(|cap| coalition_count < cap)
        {
            let solo = BTreeSet::from([player]);
            if game.coalition_feasible(&solo) {
                let new_cost = game.player_cost(player, &solo);
                if new_cost < current_cost - epsilon {
                    return Some(BlockingMove {
                        player,
                        target: None,
                        current_cost,
                        new_cost,
                    });
                }
            }
        }
    }
    None
}

/// Whether the partition is Nash-stable: no feasible unilateral deviation
/// strictly improves any player by more than `epsilon`.
pub fn is_nash_stable<G: HedonicGame>(game: &G, partition: &Partition, epsilon: f64) -> bool {
    find_blocking_move(game, partition, epsilon).is_none()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::game::FeeSharingGame;

    fn two_cluster_game(fee: f64) -> FeeSharingGame {
        let pos: &[f64] = &[0.0, 1.0, 10.0, 11.0];
        let distance = pos
            .iter()
            .map(|a| pos.iter().map(|b| (a - b).abs()).collect())
            .collect();
        FeeSharingGame::new(fee, distance, 4)
    }

    #[test]
    fn singletons_unstable_when_fee_is_high() {
        let game = two_cluster_game(6.0);
        let p = Partition::singletons(4);
        let mv = find_blocking_move(&game, &p, 1e-9).expect("high fee invites cooperation");
        assert!(mv.new_cost < mv.current_cost);
        assert!(!is_nash_stable(&game, &p, 1e-9));
    }

    #[test]
    fn paired_clusters_are_stable() {
        let game = two_cluster_game(6.0);
        // {0,1} and {2,3}: fee share 3 + distance <= 1 beats solo fee 6 and
        // beats joining the far pair (distance >= 9).
        let p = Partition::from_groups(4, &[vec![0, 1], vec![2, 3]]);
        assert!(is_nash_stable(&game, &p, 1e-9));
    }

    #[test]
    fn zero_fee_singletons_are_stable() {
        let game = two_cluster_game(0.0);
        assert!(is_nash_stable(&game, &Partition::singletons(4), 1e-9));
    }

    #[test]
    fn blocking_move_reports_singleton_exit() {
        // Grand coalition with zero fee: distant players want out.
        let game = two_cluster_game(0.0);
        let p = Partition::grand_coalition(4);
        let mv = find_blocking_move(&game, &p, 1e-9).expect("someone escapes");
        assert_eq!(mv.target, None, "best first deviation found is going solo");
    }

    #[test]
    fn epsilon_tolerance_suppresses_tiny_gains() {
        let game = two_cluster_game(6.0);
        let p = Partition::singletons(4);
        // A huge epsilon declares everything stable.
        assert!(is_nash_stable(&game, &p, 1e9));
    }
}
