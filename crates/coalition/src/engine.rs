//! The coalition-formation engine: iterated switch operations until no
//! player wants (and is allowed) to move.
//!
//! Three switch rules are provided, matching the `abl_switch_rule`
//! ablation in `DESIGN.md`:
//!
//! * [`SwitchRule::SelfishWithHistory`] — the paper's CCSGA rule
//!   (reconstructed from the coalition-formation-game literature the paper
//!   builds on): a player switches whenever it strictly lowers *its own*
//!   cost, and keeps a history of every coalition composition it has been a
//!   member of, never re-*joining* one. Splitting off into a singleton is
//!   always permitted (the individual-rationality fallback), which keeps a
//!   player from being trapped in a coalition that turned bad. Every join
//!   consumes a fresh history entry and a singleton move can only be
//!   followed by a join, so the dynamics terminate.
//! * [`SwitchRule::SelfishWithConsent`] — a switch additionally requires
//!   that no member of the receiving coalition is made worse off.
//! * [`SwitchRule::Utilitarian`] — a switch requires the total social cost
//!   to strictly decrease; social cost is then an exact potential, so
//!   convergence is immediate by monotonicity.
//!
//! # The activity-driven worklist
//!
//! The naive dynamics re-probe every player every round, even when nothing
//! a player could react to has changed. Since a probe's outcome is a pure
//! function of (a) the player's own coalition, (b) the compositions of its
//! candidate coalitions, and (c) its own history, a probe that returned
//! "no move" stays "no move" until one of those inputs changes. The engine
//! therefore tracks **dirty** players and skips quiescent ones entirely
//! (`coalition.probes_skipped`), in one of two modes:
//!
//! * **Exact mode** (no shortlist): every switch appends its source and
//!   destination slots to a global change log. A quiescent player replays
//!   the log suffix since its last probe and re-evaluates **only the
//!   changed coalitions** (`coalition.probes_partial`): every unchanged
//!   candidate — including the singleton fallback — kept its old gain
//!   `<= epsilon`, and the strict `> epsilon` acceptance means a changed
//!   candidate can never tie with an unchanged one, so the partial probe
//!   selects exactly the move the full scan would.
//! * **Shortlist mode** (`shortlist_cap > 0` with a spatial neighbor
//!   order): a static reverse-adjacency index answers "who shortlists
//!   player `m`?". A switch marks the members of the source/destination
//!   coalitions, the mover, and everyone whose shortlist contains any of
//!   them; unmarked players are skipped outright. Any event that could
//!   change a player's candidate set, current cost, or history marks it,
//!   so a skipped probe is always provably a no-op.
//!
//! Rounds still process players in ascending index order and every probe
//! evaluates candidates in the same order as the full scan, so the
//! partition trajectory — and the final [`ConvergenceReport`] — is
//! **bit-identical** to `worklist: false` at any thread count (pinned by
//! the `worklist` proptests). Games with a global coalition-count cap
//! ([`HedonicGame::max_coalitions`]) couple every probe to global state,
//! so the engine transparently falls back to full scans for them.

use crate::game::HedonicGame;
use crate::partition::{CoalitionId, Partition};
use crate::stability::is_nash_stable;
use std::collections::{BTreeSet, HashSet};

/// How a player is allowed to deviate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SwitchRule {
    /// Strict self-improvement plus a no-revisit history (CCSGA's rule).
    SelfishWithHistory,
    /// Strict self-improvement plus unanimous consent of the receiving
    /// coalition.
    SelfishWithConsent,
    /// Strict decrease of total social cost (exact potential game).
    Utilitarian,
}

/// Options for [`run`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineOptions {
    /// The switch rule in force.
    pub rule: SwitchRule,
    /// Maximum full player rounds before giving up. `0` means `100 * n`.
    pub max_rounds: usize,
    /// Strictness margin: an improvement must exceed this to count.
    pub epsilon: f64,
    /// Maximum join candidates per player scan, built from the game's
    /// spatial neighbor order ([`HedonicGame::neighbor_order`]). `0` (the
    /// default) scans every coalition, which is exact; a positive cap turns
    /// on the large-`n` shortlist approximation. Ignored when the game does
    /// not provide a neighbor order.
    pub shortlist_cap: usize,
    /// Whether to run the final `O(n · coalitions)` Nash-stability audit.
    /// `true` (the default) reports an honest [`ConvergenceReport::nash_stable`];
    /// `false` skips the audit and reports `nash_stable: false`, which is
    /// the right trade at scales where the audit costs more than the run.
    pub check_stability: bool,
    /// Whether to run the activity-driven worklist (see the module docs).
    /// `true` (the default) skips provably quiescent players; `false`
    /// forces the reference full scan every round. The trajectory is
    /// bit-identical either way — this knob exists for the equivalence
    /// tests and as an escape hatch.
    pub worklist: bool,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            rule: SwitchRule::SelfishWithHistory,
            max_rounds: 0,
            epsilon: 1e-9,
            shortlist_cap: 0,
            check_stability: true,
            worklist: true,
        }
    }
}

/// Outcome of a coalition-formation run.
#[derive(Debug, Clone)]
pub struct ConvergenceReport {
    /// The final coalition structure.
    pub partition: Partition,
    /// Full rounds executed (including the final quiet round).
    pub rounds: usize,
    /// Total switch operations applied.
    pub switches: usize,
    /// `true` if a full round passed with no switch (fixed point reached).
    pub converged: bool,
    /// Whether the final partition is Nash-stable (checked independently of
    /// the switch rule, i.e. against *all* unilateral deviations). Always
    /// `false` when the audit was skipped via
    /// [`EngineOptions::check_stability`] — "not verified", not "unstable".
    pub nash_stable: bool,
    /// Total social cost of the final partition.
    pub final_social_cost: f64,
}

/// One candidate deviation of a player.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Move {
    Join(CoalitionId),
    Singleton,
}

/// Reusable buffers shared by every probe of a run — the allocation-free
/// hot-loop pass. Candidate member lists live in one flat `slab` arena
/// (each a sorted sub-slice) instead of per-candidate `BTreeSet`s, and the
/// gain batch is written into a retained buffer via
/// `ccs_par::par_eval_min_into`.
struct Scratch {
    /// Flat arena of candidate member lists, each sorted ascending.
    slab: Vec<usize>,
    /// Candidates as `(move, slab_start, slab_end)`.
    cands: Vec<(Move, usize, usize)>,
    /// Per-candidate gains; `None` marks an inadmissible candidate.
    gains: Vec<Option<f64>>,
    /// Sorted members of the probing player's current coalition.
    from: Vec<usize>,
    /// `from` minus the player (utilitarian residual).
    residual: Vec<usize>,
    /// Changed-slot indices pending for an exact-mode partial probe.
    pending: Vec<usize>,
    /// Stamp-based slot dedup (`slot_seen[s] == stamp` ⇔ seen this pass).
    slot_seen: Vec<u32>,
    stamp: u32,
    /// Neighbor-order buffer for the shortlist path.
    order: Vec<usize>,
}

impl Scratch {
    fn new(n: usize) -> Self {
        Scratch {
            slab: Vec::new(),
            cands: Vec::new(),
            gains: Vec::new(),
            from: Vec::new(),
            residual: Vec::new(),
            pending: Vec::new(),
            slot_seen: vec![0; n],
            stamp: 0,
            order: Vec::new(),
        }
    }

    /// Starts a fresh slot-dedup pass over `nslots` slots and returns the
    /// stamp marking "seen in this pass".
    fn begin_slot_pass(&mut self, nslots: usize) -> u32 {
        self.stamp = self.stamp.wrapping_add(1);
        if self.stamp == 0 {
            self.slot_seen.fill(0);
            self.stamp = 1;
        }
        if self.slot_seen.len() < nslots {
            self.slot_seen.resize(nslots, 0);
        }
        self.stamp
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum WorklistMode {
    /// Full scan every round (worklist disabled or unsupported game).
    Off,
    /// Change-log worklist with partial probes (exact full-scan candidates).
    Exact,
    /// Reverse-neighbor dirty marking (shortlist candidates).
    Shortlist,
}

/// Dirty-player bookkeeping for one run (see the module docs).
struct Worklist {
    mode: WorklistMode,
    /// Players needing a full probe; initialized all-true so round 1 is
    /// exactly the reference full scan.
    dirty: Vec<bool>,
    /// Exact mode: slot indices touched by every switch, in order.
    changed_log: Vec<u32>,
    /// Exact mode: each player's consumed prefix of `changed_log`.
    log_pos: Vec<usize>,
    /// Shortlist mode: CSR forward neighbor lists (also reused by probes so
    /// the game's `neighbor_order` runs once per player, not once per probe).
    fwd_start: Vec<u32>,
    fwd: Vec<u32>,
    /// Shortlist mode: CSR reverse adjacency — the range
    /// `rev[rev_start[m]..rev_start[m + 1]]` lists every player whose
    /// forward list contains `m`.
    rev_start: Vec<u32>,
    rev: Vec<u32>,
}

impl Worklist {
    fn inactive(mode: WorklistMode, n: usize) -> Self {
        Worklist {
            mode,
            dirty: vec![true; n],
            changed_log: Vec::new(),
            log_pos: vec![0; n],
            fwd_start: Vec::new(),
            fwd: Vec::new(),
            rev_start: Vec::new(),
            rev: Vec::new(),
        }
    }

    fn fwd_of(&self, player: usize) -> &[u32] {
        &self.fwd[self.fwd_start[player] as usize..self.fwd_start[player + 1] as usize]
    }

    /// Marks a coalition's members dirty, plus (in shortlist mode) every
    /// player whose shortlist watches one of them.
    fn mark_slot(&mut self, partition: &Partition, id: CoalitionId) {
        for &m in partition.members(id) {
            self.dirty[m] = true;
            if self.mode == WorklistMode::Shortlist {
                let (lo, hi) = (self.rev_start[m] as usize, self.rev_start[m + 1] as usize);
                for i in lo..hi {
                    self.dirty[self.rev[i] as usize] = true;
                }
            }
        }
    }
}

/// Picks the worklist mode for this game and builds the supporting indexes.
///
/// Games with a coalition-count cap tie singleton admissibility to global
/// state no local marking can track, so they run with the worklist off.
/// With a shortlist cap, the game's neighbor availability is probed for
/// every player up front (the forward lists double as the probe-time
/// shortlists); mixed availability would make the dirty marking unsound,
/// so it also falls back to `Off`.
fn build_worklist<G: HedonicGame>(game: &G, n: usize, options: &EngineOptions) -> Worklist {
    if !options.worklist || game.max_coalitions().is_some() {
        return Worklist::inactive(WorklistMode::Off, n);
    }
    if options.shortlist_cap == 0 {
        return Worklist::inactive(WorklistMode::Exact, n);
    }
    let limit = options.shortlist_cap.saturating_mul(4).max(16);
    let mut fwd: Vec<u32> = Vec::new();
    let mut fwd_start: Vec<u32> = Vec::with_capacity(n + 1);
    fwd_start.push(0);
    let mut available = 0usize;
    let mut order: Vec<usize> = Vec::new();
    for p in 0..n {
        order.clear();
        if game.neighbor_order(p, limit, &mut order) {
            available += 1;
            fwd.extend(order.iter().map(|&q| q as u32));
        }
        fwd_start.push(fwd.len() as u32);
    }
    if available == 0 {
        // No spatial structure: probes fall back to the exact full scan,
        // which the change-log worklist tracks precisely.
        return Worklist::inactive(WorklistMode::Exact, n);
    }
    if available != n {
        return Worklist::inactive(WorklistMode::Off, n);
    }

    // Invert the forward lists into CSR reverse adjacency.
    let mut counts = vec![0u32; n + 1];
    for &q in &fwd {
        counts[q as usize + 1] += 1;
    }
    for i in 1..counts.len() {
        counts[i] += counts[i - 1];
    }
    let rev_start = counts.clone();
    let mut fill = counts;
    let mut rev = vec![0u32; fwd.len()];
    for p in 0..n {
        let (lo, hi) = (fwd_start[p] as usize, fwd_start[p + 1] as usize);
        for &q in &fwd[lo..hi] {
            rev[fill[q as usize] as usize] = p as u32;
            fill[q as usize] += 1;
        }
    }

    let mut wl = Worklist::inactive(WorklistMode::Shortlist, n);
    wl.fwd_start = fwd_start;
    wl.fwd = fwd;
    wl.rev_start = rev_start;
    wl.rev = rev;
    wl
}

/// Which candidate set a probe evaluates.
enum Probe<'a> {
    /// All candidates: the full scan or the spatial shortlist. When the
    /// worklist owns prebuilt forward lists they are passed here so the
    /// game's `neighbor_order` is not recomputed per probe.
    Full { worklist: Option<&'a Worklist> },
    /// Exact-mode partial probe over `Scratch::pending` only.
    Changed,
}

/// Runs coalition formation from `initial` until convergence (no applicable
/// switch) or the round cap.
///
/// Players are scanned round-robin in index order; each player applies its
/// *best* admissible improving move, which keeps the dynamics deterministic.
///
/// # Panics
///
/// Panics if `initial.num_players() != game.num_players()`.
pub fn run<G: HedonicGame>(
    game: &G,
    initial: Partition,
    options: EngineOptions,
) -> ConvergenceReport {
    let _span = ccs_telemetry::span!("coalition_run");
    let n = game.num_players();
    assert_eq!(
        initial.num_players(),
        n,
        "partition and game disagree on player count"
    );
    let max_rounds = if options.max_rounds == 0 {
        100 * n
    } else {
        options.max_rounds
    };
    let eps = options.epsilon;

    let mut partition = initial;
    // Per-player set of coalition compositions already visited
    // (only used by the history rule).
    let mut history: Vec<HashSet<Vec<usize>>> = vec![HashSet::new(); n];
    if options.rule == SwitchRule::SelfishWithHistory {
        for (p, visited) in history.iter_mut().enumerate() {
            let members = key_of(partition.members(partition.coalition_of(p)));
            visited.insert(members);
        }
    }

    let mut wl = build_worklist(game, n, &options);
    let mut scratch = Scratch::new(n);
    let skipped = ccs_telemetry::counter!("coalition.probes_skipped");
    let partials = ccs_telemetry::counter!("coalition.probes_partial");

    let mut switches = 0;
    let mut rounds = 0;
    let mut converged = false;

    while rounds < max_rounds {
        rounds += 1;
        let mut any_switch = false;

        for player in 0..n {
            let best = match wl.mode {
                WorklistMode::Off => best_move(
                    game,
                    &partition,
                    player,
                    &history,
                    &options,
                    &mut scratch,
                    Probe::Full { worklist: None },
                ),
                WorklistMode::Shortlist => {
                    if wl.dirty[player] {
                        wl.dirty[player] = false;
                        best_move(
                            game,
                            &partition,
                            player,
                            &history,
                            &options,
                            &mut scratch,
                            Probe::Full {
                                worklist: Some(&wl),
                            },
                        )
                    } else {
                        skipped.incr();
                        None
                    }
                }
                WorklistMode::Exact => {
                    if wl.dirty[player] {
                        wl.dirty[player] = false;
                        wl.log_pos[player] = wl.changed_log.len();
                        best_move(
                            game,
                            &partition,
                            player,
                            &history,
                            &options,
                            &mut scratch,
                            Probe::Full { worklist: None },
                        )
                    } else {
                        collect_pending(&mut scratch, &wl, player, &partition);
                        wl.log_pos[player] = wl.changed_log.len();
                        if scratch.pending.is_empty() {
                            skipped.incr();
                            None
                        } else {
                            partials.incr();
                            best_move(
                                game,
                                &partition,
                                player,
                                &history,
                                &options,
                                &mut scratch,
                                Probe::Changed,
                            )
                        }
                    }
                }
            };

            if let Some((mv, _gain)) = best {
                let from_id = partition.coalition_of(player);
                let target = match mv {
                    Move::Join(id) => {
                        partition.move_to_coalition(player, id);
                        id
                    }
                    Move::Singleton => partition.move_to_singleton(player).1,
                };
                if options.rule == SwitchRule::SelfishWithHistory {
                    history[player].insert(key_of(partition.members(target)));
                }
                switches += 1;
                any_switch = true;
                debug_assert!(partition.is_consistent());

                match wl.mode {
                    WorklistMode::Off => {}
                    WorklistMode::Exact => {
                        wl.changed_log.push(from_id.index() as u32);
                        wl.changed_log.push(target.index() as u32);
                        wl.mark_slot(&partition, from_id);
                        wl.mark_slot(&partition, target);
                        wl.dirty[player] = true;
                    }
                    WorklistMode::Shortlist => {
                        wl.mark_slot(&partition, from_id);
                        wl.mark_slot(&partition, target);
                        wl.dirty[player] = true;
                        let (lo, hi) = (
                            wl.rev_start[player] as usize,
                            wl.rev_start[player + 1] as usize,
                        );
                        for i in lo..hi {
                            wl.dirty[wl.rev[i] as usize] = true;
                        }
                    }
                }
            }
        }

        if !any_switch {
            converged = true;
            break;
        }
    }

    ccs_telemetry::counter!("coalition.rounds").add(rounds as u64);
    ccs_telemetry::counter!("coalition.switch_ops").add(switches as u64);

    let nash_stable = options.check_stability && is_nash_stable(game, &partition, eps);
    let final_social_cost = game.social_cost(partition.coalitions().map(|(_, members)| members));
    ConvergenceReport {
        partition,
        rounds,
        switches,
        converged,
        nash_stable,
        final_social_cost,
    }
}

fn key_of(members: &BTreeSet<usize>) -> Vec<usize> {
    members.iter().copied().collect()
}

/// Collects into `scratch.pending` the deduplicated, ascending slot indices
/// that changed since `player`'s last probe (its unread `changed_log`
/// suffix), excluding its own slot and tombstones.
fn collect_pending(scratch: &mut Scratch, wl: &Worklist, player: usize, partition: &Partition) {
    let stamp = scratch.begin_slot_pass(partition.num_slots());
    scratch.pending.clear();
    let own = partition.coalition_of(player).index();
    for &s in &wl.changed_log[wl.log_pos[player]..] {
        let s = s as usize;
        if s == own || scratch.slot_seen[s] == stamp {
            continue;
        }
        scratch.slot_seen[s] = stamp;
        if partition.members(partition.slot(s)).is_empty() {
            continue;
        }
        scratch.pending.push(s);
    }
    scratch.pending.sort_unstable();
}

/// Appends `members ∪ {player}` to `slab` in ascending order and returns
/// the range start. `player` must not be a member.
fn push_joined(slab: &mut Vec<usize>, members: &BTreeSet<usize>, player: usize) -> usize {
    let start = slab.len();
    let mut placed = false;
    for &q in members {
        if !placed && player < q {
            slab.push(player);
            placed = true;
        }
        slab.push(q);
    }
    if !placed {
        slab.push(player);
    }
    start
}

/// The best admissible improving move for `player`, or `None`.
///
/// Candidates are materialized in the serial scan order into the flat
/// scratch arena, their gains are evaluated as one `ccs-par` batch (each
/// gain is a pure function of the candidate, so the batch is
/// deterministic), and a serial reduce applies the original first-wins
/// tie-break by candidate index — making the chosen move, and therefore
/// the whole partition trajectory, bit-identical at any thread count.
///
/// A [`Probe::Changed`] probe evaluates only the coalitions in
/// `scratch.pending` and omits the singleton candidate: every omitted
/// candidate kept its gain from the player's last probe (`<= epsilon`), so
/// it cannot be the best move (see the module docs).
fn best_move<G: HedonicGame>(
    game: &G,
    partition: &Partition,
    player: usize,
    history: &[HashSet<Vec<usize>>],
    options: &EngineOptions,
    scratch: &mut Scratch,
    probe: Probe<'_>,
) -> Option<(Move, f64)> {
    let eps = options.epsilon;
    let prefs = ccs_telemetry::counter!("coalition.preference_evals");
    let attempts = ccs_telemetry::counter!("coalition.switch_ops_attempted");
    let from_id = partition.coalition_of(player);
    let from_members = partition.members(from_id);
    let coalition_count = partition.num_coalitions();

    scratch.from.clear();
    scratch.from.extend(from_members.iter().copied());
    prefs.incr();
    let current_cost = game.player_cost_sorted(player, &scratch.from);

    // Costs of the coalition left behind, before and after departure — only
    // the utilitarian rule reads these, so the selfish rules skip the
    // `2·|S| - 1` extra evaluations per scanned player.
    let (from_cost_before, from_cost_after) = if options.rule == SwitchRule::Utilitarian {
        scratch.residual.clear();
        scratch
            .residual
            .extend(scratch.from.iter().copied().filter(|&q| q != player));
        let before = scratch
            .from
            .iter()
            .map(|&q| {
                prefs.incr();
                game.player_cost_sorted(q, &scratch.from)
            })
            .sum();
        let after = scratch
            .residual
            .iter()
            .map(|&q| {
                prefs.incr();
                game.player_cost_sorted(q, &scratch.residual)
            })
            .sum();
        (before, after)
    } else {
        (0.0, 0.0)
    };

    // Candidate joins; history-blocked compositions are pruned here (pure
    // and cheap) so they cost no game evaluations. With a shortlist cap and
    // a game that exposes a spatial neighbor order, candidates come from
    // the coalitions of the nearest players (deduplicated, nearest-first,
    // capped) instead of a full scan over every coalition — an O(cap)
    // approximation of the O(coalitions) exact step. The neighbor order is
    // deterministic, so the trajectory stays thread-count independent.
    scratch.slab.clear();
    scratch.cands.clear();
    let changed_only = matches!(probe, Probe::Changed);
    if changed_only {
        // Partial probe: pending is already deduplicated, ascending, and
        // excludes the player's own slot and tombstones — the same
        // candidate order the full scan would visit these slots in.
        for i in 0..scratch.pending.len() {
            let id = partition.slot(scratch.pending[i]);
            let members = partition.members(id);
            debug_assert!(!members.is_empty());
            let start = push_joined(&mut scratch.slab, members, player);
            if options.rule == SwitchRule::SelfishWithHistory
                && history[player].contains(&scratch.slab[start..])
            {
                scratch.slab.truncate(start);
                continue;
            }
            scratch
                .cands
                .push((Move::Join(id), start, scratch.slab.len()));
        }
    } else {
        let mut shortlisted = false;
        if options.shortlist_cap > 0 {
            let cap = options.shortlist_cap;
            scratch.order.clear();
            let have_order = match probe {
                Probe::Full { worklist: Some(wl) } => {
                    scratch
                        .order
                        .extend(wl.fwd_of(player).iter().map(|&q| q as usize));
                    true
                }
                _ => {
                    // Ask for more neighbors than the cap: nearby players
                    // often share a coalition, and history can block some
                    // candidates outright.
                    game.neighbor_order(player, cap.saturating_mul(4).max(16), &mut scratch.order)
                }
            };
            if have_order {
                shortlisted = true;
                let stamp = scratch.begin_slot_pass(partition.num_slots());
                for i in 0..scratch.order.len() {
                    let q = scratch.order[i];
                    if q == player {
                        continue;
                    }
                    let id = partition.coalition_of(q);
                    if id == from_id || scratch.slot_seen[id.index()] == stamp {
                        continue;
                    }
                    scratch.slot_seen[id.index()] = stamp;
                    let start = push_joined(&mut scratch.slab, partition.members(id), player);
                    if options.rule == SwitchRule::SelfishWithHistory
                        && history[player].contains(&scratch.slab[start..])
                    {
                        scratch.slab.truncate(start);
                        continue;
                    }
                    scratch
                        .cands
                        .push((Move::Join(id), start, scratch.slab.len()));
                    if scratch.cands.len() >= cap {
                        break;
                    }
                }
            }
        }
        if !shortlisted {
            for (id, members) in partition.coalitions() {
                if id == from_id {
                    continue;
                }
                let start = push_joined(&mut scratch.slab, members, player);
                if options.rule == SwitchRule::SelfishWithHistory
                    && history[player].contains(&scratch.slab[start..])
                {
                    scratch.slab.truncate(start);
                    continue;
                }
                scratch
                    .cands
                    .push((Move::Join(id), start, scratch.slab.len()));
            }
        }
        // Candidate: split off into a singleton (only meaningful from a
        // larger coalition, and only if the coalition budget allows one
        // more). Going solo is the individual-rationality fallback: it is
        // never blocked by history (see the module docs) and needs nobody's
        // consent.
        if from_members.len() > 1
            && game
                .max_coalitions()
                .is_none_or(|cap| coalition_count < cap)
        {
            let start = scratch.slab.len();
            scratch.slab.push(player);
            scratch.cands.push((Move::Singleton, start, start + 1));
        }
    }

    // Parallel gain evaluation; `None` marks an inadmissible candidate
    // (infeasible, or a join the receiving coalition would veto). Each
    // candidate is a full facility evaluation, so a tiny explicit minimum
    // keeps these batches parallel below the global `ccs_par` cutoff. The
    // results land in the retained `gains` buffer — no per-probe `Vec`.
    let Scratch {
        slab, cands, gains, ..
    } = &mut *scratch;
    let (slab, cands) = (&*slab, &*cands);
    ccs_par::par_eval_min_into(cands.len(), 2, gains, |i| {
        let (mv, s, e) = cands[i];
        let joined = &slab[s..e];
        if !game.coalition_feasible_sorted(joined) {
            return None;
        }
        prefs.incr();
        let new_cost = game.player_cost_sorted(player, joined);
        match options.rule {
            SwitchRule::SelfishWithHistory => Some(current_cost - new_cost),
            SwitchRule::SelfishWithConsent => match mv {
                Move::Singleton => Some(current_cost - new_cost),
                Move::Join(id) => {
                    let members = partition.members(id);
                    let harmed = members.iter().any(|&q| {
                        prefs.incr();
                        prefs.incr();
                        game.player_cost_sorted(q, joined) > game.player_cost(q, members) + eps
                    });
                    if harmed {
                        None
                    } else {
                        Some(current_cost - new_cost)
                    }
                }
            },
            SwitchRule::Utilitarian => {
                let (to_before, to_after) = match mv {
                    Move::Join(id) => {
                        let members = partition.members(id);
                        (
                            members
                                .iter()
                                .map(|&q| {
                                    prefs.incr();
                                    game.player_cost(q, members)
                                })
                                .sum::<f64>(),
                            joined
                                .iter()
                                .map(|&q| {
                                    prefs.incr();
                                    game.player_cost_sorted(q, joined)
                                })
                                .sum::<f64>(),
                        )
                    }
                    Move::Singleton => (0.0, new_cost),
                };
                Some((from_cost_before + to_before) - (from_cost_after + to_after))
            }
        }
    });

    // Deterministic serial reduce: strictly larger gain wins, first
    // candidate wins ties — exactly the serial scan's behaviour.
    let mut best: Option<(Move, f64)> = None;
    for (&(mv, _, _), gain) in cands.iter().zip(gains.iter()) {
        let Some(gain) = *gain else { continue };
        attempts.incr();
        if gain > eps {
            match &best {
                Some((_, g)) if *g >= gain => {}
                _ => best = Some((mv, gain)),
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::game::FeeSharingGame;

    fn line_game(fee: f64, max_size: usize) -> FeeSharingGame {
        let pos: &[f64] = &[0.0, 1.0, 2.0, 10.0, 11.0];
        let distance = pos
            .iter()
            .map(|a| pos.iter().map(|b| (a - b).abs()).collect())
            .collect();
        FeeSharingGame::new(fee, distance, max_size)
    }

    #[test]
    fn converges_from_singletons_under_all_rules() {
        for rule in [
            SwitchRule::SelfishWithHistory,
            SwitchRule::SelfishWithConsent,
            SwitchRule::Utilitarian,
        ] {
            let game = line_game(6.0, 5);
            let report = run(
                &game,
                Partition::singletons(5),
                EngineOptions {
                    rule,
                    ..EngineOptions::default()
                },
            );
            assert!(report.converged, "rule {rule:?} must converge");
            assert!(report.partition.is_consistent());
            assert!(report.switches > 0, "fee 6 makes cooperation attractive");
            assert!(report.final_social_cost.is_finite());
        }
    }

    #[test]
    fn zero_fee_keeps_singletons() {
        // With no fee to share, moving can only add distance: nobody moves.
        let game = line_game(0.0, 5);
        let report = run(&game, Partition::singletons(5), EngineOptions::default());
        assert!(report.converged);
        assert_eq!(report.switches, 0);
        assert_eq!(report.partition.num_coalitions(), 5);
        assert!(report.nash_stable);
    }

    #[test]
    fn nearby_players_group_distant_player_stays_out() {
        // Players at 0,1,2 cluster; 10 and 11 pair up; fee 4 is not worth a
        // trip across the gap of 8.
        let game = line_game(4.0, 5);
        let report = run(&game, Partition::singletons(5), EngineOptions::default());
        assert!(report.converged);
        let groups = report.partition.canonical();
        // No coalition mixes {0,1,2} with {3,4}.
        for g in &groups {
            let has_near = g.iter().any(|&p| p <= 2);
            let has_far = g.iter().any(|&p| p >= 3);
            assert!(
                !(has_near && has_far),
                "unexpected mixed coalition {g:?} in {groups:?}"
            );
        }
    }

    #[test]
    fn history_rule_reaches_nash_stable_partition() {
        let game = line_game(6.0, 5);
        let report = run(&game, Partition::singletons(5), EngineOptions::default());
        assert!(report.converged);
        assert!(
            report.nash_stable,
            "final partition {} should be Nash-stable",
            report.partition
        );
    }

    #[test]
    fn utilitarian_rule_never_increases_social_cost() {
        let game = line_game(6.0, 5);
        let initial = Partition::singletons(5);
        let initial_cost = game.social_cost(initial.coalitions().map(|(_, m)| m));
        let report = run(
            &game,
            initial,
            EngineOptions {
                rule: SwitchRule::Utilitarian,
                ..EngineOptions::default()
            },
        );
        assert!(report.final_social_cost <= initial_cost + 1e-9);
    }

    #[test]
    fn feasibility_cap_limits_coalition_size() {
        let game = line_game(20.0, 2);
        let report = run(&game, Partition::singletons(5), EngineOptions::default());
        for (_, members) in report.partition.coalitions() {
            assert!(members.len() <= 2, "cap of 2 violated: {members:?}");
        }
    }

    #[test]
    fn max_coalitions_blocks_singleton_splits() {
        // Start from the grand coalition with a cap of 1 coalition: the only
        // deviation (going solo) would create a second coalition, so the
        // partition must stay put even though players might prefer leaving.
        struct Capped(FeeSharingGame);
        impl HedonicGame for Capped {
            fn num_players(&self) -> usize {
                self.0.num_players()
            }
            fn player_cost(&self, p: usize, c: &BTreeSet<usize>) -> f64 {
                self.0.player_cost(p, c)
            }
            fn max_coalitions(&self) -> Option<usize> {
                Some(1)
            }
        }
        let game = Capped(line_game(0.1, 5));
        let report = run(
            &game,
            Partition::grand_coalition(5),
            EngineOptions::default(),
        );
        assert_eq!(report.partition.num_coalitions(), 1);
        assert_eq!(report.switches, 0);
    }

    #[test]
    fn starting_from_grand_coalition_also_converges() {
        let game = line_game(2.0, 5);
        let report = run(
            &game,
            Partition::grand_coalition(5),
            EngineOptions::default(),
        );
        assert!(report.converged);
        assert!(report.partition.is_consistent());
        // Fee 2 cannot justify the 0..11 spread: the far pair must break off.
        assert!(report.partition.num_coalitions() >= 2);
    }

    #[test]
    fn default_round_cap_stops_nonconverging_dynamics() {
        // A pathological (non-hedonic) game whose cost falls on every
        // evaluation: under the utilitarian rule the later-evaluated state
        // always looks cheaper, so singletons merge, pairs split, and the
        // dynamics cycle forever. `max_rounds = 0` must clamp to the
        // documented `100 * n` and report `converged: false` instead of
        // looping.
        use std::sync::atomic::{AtomicU64, Ordering};
        struct EverCheaper(AtomicU64);
        impl HedonicGame for EverCheaper {
            fn num_players(&self) -> usize {
                2
            }
            fn player_cost(&self, _p: usize, _c: &BTreeSet<usize>) -> f64 {
                1e6 - self.0.fetch_add(1, Ordering::Relaxed) as f64
            }
        }
        let game = EverCheaper(AtomicU64::new(0));
        let report = run(
            &game,
            Partition::singletons(2),
            EngineOptions {
                rule: SwitchRule::Utilitarian,
                max_rounds: 0,
                ..EngineOptions::default()
            },
        );
        assert!(!report.converged, "cycling dynamics must not converge");
        assert_eq!(report.rounds, 100 * 2, "cap must clamp to 100 * n");
        assert!(report.switches >= report.rounds, "every round kept moving");
        assert!(report.partition.is_consistent());
    }

    #[test]
    fn skipping_the_stability_audit_reports_unverified() {
        let game = line_game(6.0, 5);
        let audited = run(&game, Partition::singletons(5), EngineOptions::default());
        let skipped = run(
            &game,
            Partition::singletons(5),
            EngineOptions {
                check_stability: false,
                ..EngineOptions::default()
            },
        );
        // Identical dynamics, only the final audit differs.
        assert_eq!(skipped.partition.canonical(), audited.partition.canonical());
        assert_eq!(skipped.switches, audited.switches);
        assert!(audited.nash_stable);
        assert!(
            !skipped.nash_stable,
            "skipped audit must read as unverified"
        );
    }

    /// A fee-sharing game that exposes its distance matrix as a spatial
    /// neighbor order, exercising the shortlist path.
    struct Spatial(FeeSharingGame);
    impl HedonicGame for Spatial {
        fn num_players(&self) -> usize {
            self.0.num_players()
        }
        fn player_cost(&self, p: usize, c: &BTreeSet<usize>) -> f64 {
            self.0.player_cost(p, c)
        }
        fn coalition_feasible(&self, c: &BTreeSet<usize>) -> bool {
            self.0.coalition_feasible(c)
        }
        fn neighbor_order(&self, player: usize, limit: usize, out: &mut Vec<usize>) -> bool {
            let mut order: Vec<usize> = (0..self.num_players()).filter(|&q| q != player).collect();
            order.sort_by(|&a, &b| {
                self.0.distance[player][a]
                    .total_cmp(&self.0.distance[player][b])
                    .then(a.cmp(&b))
            });
            order.truncate(limit);
            out.extend_from_slice(&order);
            true
        }
    }

    #[test]
    fn generous_shortlist_matches_the_full_scan() {
        // With a cap at least the number of coalitions, the shortlist sees
        // every coalition the full scan sees, so the trajectory is identical.
        let full = run(
            &line_game(6.0, 5),
            Partition::singletons(5),
            EngineOptions::default(),
        );
        let short = run(
            &Spatial(line_game(6.0, 5)),
            Partition::singletons(5),
            EngineOptions {
                shortlist_cap: 8,
                ..EngineOptions::default()
            },
        );
        assert_eq!(short.partition.canonical(), full.partition.canonical());
        assert_eq!(short.switches, full.switches);
        assert!(short.converged);
    }

    #[test]
    fn tight_shortlist_still_converges_to_a_consistent_partition() {
        let report = run(
            &Spatial(line_game(6.0, 5)),
            Partition::singletons(5),
            EngineOptions {
                shortlist_cap: 1,
                ..EngineOptions::default()
            },
        );
        assert!(report.converged);
        assert!(report.partition.is_consistent());
        assert!(report.switches > 0, "nearest neighbor is enough to pair up");
    }

    #[test]
    fn shortlist_cap_is_inert_without_a_neighbor_order() {
        // FeeSharingGame keeps the default `neighbor_order` (returns false),
        // so a positive cap must fall back to the exact full scan.
        let game = line_game(6.0, 5);
        let full = run(&game, Partition::singletons(5), EngineOptions::default());
        let capped = run(
            &game,
            Partition::singletons(5),
            EngineOptions {
                shortlist_cap: 1,
                ..EngineOptions::default()
            },
        );
        assert_eq!(capped.partition.canonical(), full.partition.canonical());
        assert_eq!(capped.switches, full.switches);
    }

    #[test]
    fn round_cap_is_respected() {
        let game = line_game(6.0, 5);
        let report = run(
            &game,
            Partition::singletons(5),
            EngineOptions {
                max_rounds: 1,
                ..EngineOptions::default()
            },
        );
        assert_eq!(report.rounds, 1);
    }

    /// Worklist on vs. off must produce bit-identical reports — the
    /// exhaustive version lives in `tests/worklist.rs`; this is the quick
    /// in-crate check across rules and both candidate paths.
    #[test]
    fn worklist_matches_full_scan_across_rules_and_paths() {
        for rule in [
            SwitchRule::SelfishWithHistory,
            SwitchRule::SelfishWithConsent,
            SwitchRule::Utilitarian,
        ] {
            for fee in [0.0, 2.0, 4.0, 6.0, 20.0] {
                for cap in [0usize, 1, 3, 8] {
                    let opts = |worklist| EngineOptions {
                        rule,
                        shortlist_cap: cap,
                        worklist,
                        ..EngineOptions::default()
                    };
                    let with = run(
                        &Spatial(line_game(fee, 3)),
                        Partition::singletons(5),
                        opts(true),
                    );
                    let without = run(
                        &Spatial(line_game(fee, 3)),
                        Partition::singletons(5),
                        opts(false),
                    );
                    let ctx = format!("rule {rule:?} fee {fee} cap {cap}");
                    assert_eq!(with.partition, without.partition, "{ctx}");
                    assert_eq!(with.rounds, without.rounds, "{ctx}");
                    assert_eq!(with.switches, without.switches, "{ctx}");
                    assert_eq!(with.converged, without.converged, "{ctx}");
                    assert_eq!(
                        with.final_social_cost.to_bits(),
                        without.final_social_cost.to_bits(),
                        "{ctx}"
                    );
                }
            }
        }
    }
}
