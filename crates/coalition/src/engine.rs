//! The coalition-formation engine: iterated switch operations until no
//! player wants (and is allowed) to move.
//!
//! Three switch rules are provided, matching the `abl_switch_rule`
//! ablation in `DESIGN.md`:
//!
//! * [`SwitchRule::SelfishWithHistory`] — the paper's CCSGA rule
//!   (reconstructed from the coalition-formation-game literature the paper
//!   builds on): a player switches whenever it strictly lowers *its own*
//!   cost, and keeps a history of every coalition composition it has been a
//!   member of, never re-*joining* one. Splitting off into a singleton is
//!   always permitted (the individual-rationality fallback), which keeps a
//!   player from being trapped in a coalition that turned bad. Every join
//!   consumes a fresh history entry and a singleton move can only be
//!   followed by a join, so the dynamics terminate.
//! * [`SwitchRule::SelfishWithConsent`] — a switch additionally requires
//!   that no member of the receiving coalition is made worse off.
//! * [`SwitchRule::Utilitarian`] — a switch requires the total social cost
//!   to strictly decrease; social cost is then an exact potential, so
//!   convergence is immediate by monotonicity.

use crate::game::HedonicGame;
use crate::partition::{CoalitionId, Partition};
use crate::stability::is_nash_stable;
use std::collections::{BTreeSet, HashSet};

/// How a player is allowed to deviate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SwitchRule {
    /// Strict self-improvement plus a no-revisit history (CCSGA's rule).
    SelfishWithHistory,
    /// Strict self-improvement plus unanimous consent of the receiving
    /// coalition.
    SelfishWithConsent,
    /// Strict decrease of total social cost (exact potential game).
    Utilitarian,
}

/// Options for [`run`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineOptions {
    /// The switch rule in force.
    pub rule: SwitchRule,
    /// Maximum full player rounds before giving up. `0` means `100 * n`.
    pub max_rounds: usize,
    /// Strictness margin: an improvement must exceed this to count.
    pub epsilon: f64,
    /// Maximum join candidates per player scan, built from the game's
    /// spatial neighbor order ([`HedonicGame::neighbor_order`]). `0` (the
    /// default) scans every coalition, which is exact; a positive cap turns
    /// on the large-`n` shortlist approximation. Ignored when the game does
    /// not provide a neighbor order.
    pub shortlist_cap: usize,
    /// Whether to run the final `O(n · coalitions)` Nash-stability audit.
    /// `true` (the default) reports an honest [`ConvergenceReport::nash_stable`];
    /// `false` skips the audit and reports `nash_stable: false`, which is
    /// the right trade at scales where the audit costs more than the run.
    pub check_stability: bool,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            rule: SwitchRule::SelfishWithHistory,
            max_rounds: 0,
            epsilon: 1e-9,
            shortlist_cap: 0,
            check_stability: true,
        }
    }
}

/// Outcome of a coalition-formation run.
#[derive(Debug, Clone)]
pub struct ConvergenceReport {
    /// The final coalition structure.
    pub partition: Partition,
    /// Full rounds executed (including the final quiet round).
    pub rounds: usize,
    /// Total switch operations applied.
    pub switches: usize,
    /// `true` if a full round passed with no switch (fixed point reached).
    pub converged: bool,
    /// Whether the final partition is Nash-stable (checked independently of
    /// the switch rule, i.e. against *all* unilateral deviations). Always
    /// `false` when the audit was skipped via
    /// [`EngineOptions::check_stability`] — "not verified", not "unstable".
    pub nash_stable: bool,
    /// Total social cost of the final partition.
    pub final_social_cost: f64,
}

/// One candidate deviation of a player.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Move {
    Join(CoalitionId),
    Singleton,
}

/// Runs coalition formation from `initial` until convergence (no applicable
/// switch) or the round cap.
///
/// Players are scanned round-robin in index order; each player applies its
/// *best* admissible improving move, which keeps the dynamics deterministic.
///
/// # Panics
///
/// Panics if `initial.num_players() != game.num_players()`.
pub fn run<G: HedonicGame>(
    game: &G,
    initial: Partition,
    options: EngineOptions,
) -> ConvergenceReport {
    let _span = ccs_telemetry::span!("coalition_run");
    let n = game.num_players();
    assert_eq!(
        initial.num_players(),
        n,
        "partition and game disagree on player count"
    );
    let max_rounds = if options.max_rounds == 0 {
        100 * n
    } else {
        options.max_rounds
    };
    let eps = options.epsilon;

    let mut partition = initial;
    // Per-player set of coalition compositions already visited
    // (only used by the history rule).
    let mut history: Vec<HashSet<Vec<usize>>> = vec![HashSet::new(); n];
    if options.rule == SwitchRule::SelfishWithHistory {
        for (p, visited) in history.iter_mut().enumerate() {
            let members = key_of(partition.members(partition.coalition_of(p)));
            visited.insert(members);
        }
    }

    let mut switches = 0;
    let mut rounds = 0;
    let mut converged = false;

    while rounds < max_rounds {
        rounds += 1;
        let mut any_switch = false;

        for player in 0..n {
            if let Some((mv, _gain)) = best_move(game, &partition, player, &history, options) {
                let target = match mv {
                    Move::Join(id) => {
                        partition.move_to_coalition(player, id);
                        id
                    }
                    Move::Singleton => partition.move_to_singleton(player).1,
                };
                if options.rule == SwitchRule::SelfishWithHistory {
                    history[player].insert(key_of(partition.members(target)));
                }
                switches += 1;
                any_switch = true;
                debug_assert!(partition.is_consistent());
            }
        }

        if !any_switch {
            converged = true;
            break;
        }
    }

    ccs_telemetry::counter!("coalition.rounds").add(rounds as u64);
    ccs_telemetry::counter!("coalition.switch_ops").add(switches as u64);

    let nash_stable = options.check_stability && is_nash_stable(game, &partition, eps);
    let final_social_cost = game.social_cost(partition.coalitions().map(|(_, members)| members));
    ConvergenceReport {
        partition,
        rounds,
        switches,
        converged,
        nash_stable,
        final_social_cost,
    }
}

fn key_of(members: &BTreeSet<usize>) -> Vec<usize> {
    members.iter().copied().collect()
}

/// One materialized candidate deviation, ready for batch evaluation.
struct Candidate {
    mv: Move,
    joined: BTreeSet<usize>,
}

/// The best admissible improving move for `player`, or `None`.
///
/// Candidates are materialized in the serial scan order, their gains are
/// evaluated as one `ccs-par` batch (each gain is a pure function of the
/// candidate, so the batch is deterministic), and a serial reduce applies
/// the original first-wins tie-break by candidate index — making the chosen
/// move, and therefore the whole partition trajectory, bit-identical at any
/// thread count.
fn best_move<G: HedonicGame>(
    game: &G,
    partition: &Partition,
    player: usize,
    history: &[HashSet<Vec<usize>>],
    options: EngineOptions,
) -> Option<(Move, f64)> {
    let eps = options.epsilon;
    let prefs = ccs_telemetry::counter!("coalition.preference_evals");
    let attempts = ccs_telemetry::counter!("coalition.switch_ops_attempted");
    let cost = |p: usize, c: &BTreeSet<usize>| {
        prefs.incr();
        game.player_cost(p, c)
    };
    let from_id = partition.coalition_of(player);
    let from_members = partition.members(from_id);
    let current_cost = cost(player, from_members);
    let coalition_count = partition.num_coalitions();

    // Costs of the coalition left behind, before and after departure — only
    // the utilitarian rule reads these, so the selfish rules skip the
    // `2·|S| - 1` extra evaluations per scanned player.
    let (from_cost_before, from_cost_after) = if options.rule == SwitchRule::Utilitarian {
        let mut residual: BTreeSet<usize> = from_members.clone();
        residual.remove(&player);
        (
            from_members.iter().map(|&q| cost(q, from_members)).sum(),
            residual.iter().map(|&q| cost(q, &residual)).sum(),
        )
    } else {
        (0.0, 0.0)
    };

    // Candidate joins; history-blocked compositions are pruned here (pure
    // and cheap) so they cost no game evaluations. With a shortlist cap and
    // a game that exposes a spatial neighbor order, candidates come from
    // the coalitions of the nearest players (deduplicated, nearest-first,
    // capped) instead of a full scan over every coalition — an O(cap)
    // approximation of the O(coalitions) exact step. The neighbor order is
    // deterministic, so the trajectory stays thread-count independent.
    let mut candidates: Vec<Candidate> = Vec::new();
    let mut shortlisted = false;
    if options.shortlist_cap > 0 {
        let cap = options.shortlist_cap;
        let mut order: Vec<usize> = Vec::new();
        // Ask for more neighbors than the cap: nearby players often share a
        // coalition, and history can block some candidates outright.
        if game.neighbor_order(player, cap.saturating_mul(4).max(16), &mut order) {
            shortlisted = true;
            let mut seen: HashSet<CoalitionId> = HashSet::new();
            for q in order {
                if q == player {
                    continue;
                }
                let id = partition.coalition_of(q);
                if id == from_id || !seen.insert(id) {
                    continue;
                }
                let mut joined: BTreeSet<usize> = partition.members(id).clone();
                joined.insert(player);
                if options.rule == SwitchRule::SelfishWithHistory
                    && history[player].contains(&key_of(&joined))
                {
                    continue;
                }
                candidates.push(Candidate {
                    mv: Move::Join(id),
                    joined,
                });
                if candidates.len() >= cap {
                    break;
                }
            }
        }
    }
    if !shortlisted {
        for (id, members) in partition.coalitions() {
            if id == from_id {
                continue;
            }
            let mut joined: BTreeSet<usize> = members.clone();
            joined.insert(player);
            if options.rule == SwitchRule::SelfishWithHistory
                && history[player].contains(&key_of(&joined))
            {
                continue;
            }
            candidates.push(Candidate {
                mv: Move::Join(id),
                joined,
            });
        }
    }
    // Candidate: split off into a singleton (only meaningful from a larger
    // coalition, and only if the coalition budget allows one more). Going
    // solo is the individual-rationality fallback: it is never blocked by
    // history (see the module docs) and needs nobody's consent.
    if from_members.len() > 1
        && game
            .max_coalitions()
            .is_none_or(|cap| coalition_count < cap)
    {
        candidates.push(Candidate {
            mv: Move::Singleton,
            joined: BTreeSet::from([player]),
        });
    }

    // Parallel gain evaluation; `None` marks an inadmissible candidate
    // (infeasible, or a join the receiving coalition would veto). Each
    // candidate is a full facility evaluation, so a tiny explicit minimum
    // keeps these batches parallel below the global `ccs_par` cutoff.
    let gains: Vec<Option<f64>> = ccs_par::par_map_min(&candidates, 2, |_, cand| {
        if !game.coalition_feasible(&cand.joined) {
            return None;
        }
        let new_cost = cost(player, &cand.joined);
        match options.rule {
            SwitchRule::SelfishWithHistory => Some(current_cost - new_cost),
            SwitchRule::SelfishWithConsent => match cand.mv {
                Move::Singleton => Some(current_cost - new_cost),
                Move::Join(id) => {
                    let members = partition.members(id);
                    let harmed = members
                        .iter()
                        .any(|&q| cost(q, &cand.joined) > cost(q, members) + eps);
                    if harmed {
                        None
                    } else {
                        Some(current_cost - new_cost)
                    }
                }
            },
            SwitchRule::Utilitarian => {
                let (to_before, to_after) = match cand.mv {
                    Move::Join(id) => {
                        let members = partition.members(id);
                        (
                            members.iter().map(|&q| cost(q, members)).sum::<f64>(),
                            cand.joined
                                .iter()
                                .map(|&q| cost(q, &cand.joined))
                                .sum::<f64>(),
                        )
                    }
                    Move::Singleton => (0.0, new_cost),
                };
                Some((from_cost_before + to_before) - (from_cost_after + to_after))
            }
        }
    });

    // Deterministic serial reduce: strictly larger gain wins, first
    // candidate wins ties — exactly the serial scan's behaviour.
    let mut best: Option<(Move, f64)> = None;
    for (cand, gain) in candidates.iter().zip(&gains) {
        let Some(gain) = *gain else { continue };
        attempts.incr();
        if gain > eps {
            match &best {
                Some((_, g)) if *g >= gain => {}
                _ => best = Some((cand.mv, gain)),
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::game::FeeSharingGame;

    fn line_game(fee: f64, max_size: usize) -> FeeSharingGame {
        let pos: &[f64] = &[0.0, 1.0, 2.0, 10.0, 11.0];
        let distance = pos
            .iter()
            .map(|a| pos.iter().map(|b| (a - b).abs()).collect())
            .collect();
        FeeSharingGame::new(fee, distance, max_size)
    }

    #[test]
    fn converges_from_singletons_under_all_rules() {
        for rule in [
            SwitchRule::SelfishWithHistory,
            SwitchRule::SelfishWithConsent,
            SwitchRule::Utilitarian,
        ] {
            let game = line_game(6.0, 5);
            let report = run(
                &game,
                Partition::singletons(5),
                EngineOptions {
                    rule,
                    ..EngineOptions::default()
                },
            );
            assert!(report.converged, "rule {rule:?} must converge");
            assert!(report.partition.is_consistent());
            assert!(report.switches > 0, "fee 6 makes cooperation attractive");
            assert!(report.final_social_cost.is_finite());
        }
    }

    #[test]
    fn zero_fee_keeps_singletons() {
        // With no fee to share, moving can only add distance: nobody moves.
        let game = line_game(0.0, 5);
        let report = run(&game, Partition::singletons(5), EngineOptions::default());
        assert!(report.converged);
        assert_eq!(report.switches, 0);
        assert_eq!(report.partition.num_coalitions(), 5);
        assert!(report.nash_stable);
    }

    #[test]
    fn nearby_players_group_distant_player_stays_out() {
        // Players at 0,1,2 cluster; 10 and 11 pair up; fee 4 is not worth a
        // trip across the gap of 8.
        let game = line_game(4.0, 5);
        let report = run(&game, Partition::singletons(5), EngineOptions::default());
        assert!(report.converged);
        let groups = report.partition.canonical();
        // No coalition mixes {0,1,2} with {3,4}.
        for g in &groups {
            let has_near = g.iter().any(|&p| p <= 2);
            let has_far = g.iter().any(|&p| p >= 3);
            assert!(
                !(has_near && has_far),
                "unexpected mixed coalition {g:?} in {groups:?}"
            );
        }
    }

    #[test]
    fn history_rule_reaches_nash_stable_partition() {
        let game = line_game(6.0, 5);
        let report = run(&game, Partition::singletons(5), EngineOptions::default());
        assert!(report.converged);
        assert!(
            report.nash_stable,
            "final partition {} should be Nash-stable",
            report.partition
        );
    }

    #[test]
    fn utilitarian_rule_never_increases_social_cost() {
        let game = line_game(6.0, 5);
        let initial = Partition::singletons(5);
        let initial_cost = game.social_cost(initial.coalitions().map(|(_, m)| m));
        let report = run(
            &game,
            initial,
            EngineOptions {
                rule: SwitchRule::Utilitarian,
                ..EngineOptions::default()
            },
        );
        assert!(report.final_social_cost <= initial_cost + 1e-9);
    }

    #[test]
    fn feasibility_cap_limits_coalition_size() {
        let game = line_game(20.0, 2);
        let report = run(&game, Partition::singletons(5), EngineOptions::default());
        for (_, members) in report.partition.coalitions() {
            assert!(members.len() <= 2, "cap of 2 violated: {members:?}");
        }
    }

    #[test]
    fn max_coalitions_blocks_singleton_splits() {
        // Start from the grand coalition with a cap of 1 coalition: the only
        // deviation (going solo) would create a second coalition, so the
        // partition must stay put even though players might prefer leaving.
        struct Capped(FeeSharingGame);
        impl HedonicGame for Capped {
            fn num_players(&self) -> usize {
                self.0.num_players()
            }
            fn player_cost(&self, p: usize, c: &BTreeSet<usize>) -> f64 {
                self.0.player_cost(p, c)
            }
            fn max_coalitions(&self) -> Option<usize> {
                Some(1)
            }
        }
        let game = Capped(line_game(0.1, 5));
        let report = run(
            &game,
            Partition::grand_coalition(5),
            EngineOptions::default(),
        );
        assert_eq!(report.partition.num_coalitions(), 1);
        assert_eq!(report.switches, 0);
    }

    #[test]
    fn starting_from_grand_coalition_also_converges() {
        let game = line_game(2.0, 5);
        let report = run(
            &game,
            Partition::grand_coalition(5),
            EngineOptions::default(),
        );
        assert!(report.converged);
        assert!(report.partition.is_consistent());
        // Fee 2 cannot justify the 0..11 spread: the far pair must break off.
        assert!(report.partition.num_coalitions() >= 2);
    }

    #[test]
    fn default_round_cap_stops_nonconverging_dynamics() {
        // A pathological (non-hedonic) game whose cost falls on every
        // evaluation: under the utilitarian rule the later-evaluated state
        // always looks cheaper, so singletons merge, pairs split, and the
        // dynamics cycle forever. `max_rounds = 0` must clamp to the
        // documented `100 * n` and report `converged: false` instead of
        // looping.
        use std::sync::atomic::{AtomicU64, Ordering};
        struct EverCheaper(AtomicU64);
        impl HedonicGame for EverCheaper {
            fn num_players(&self) -> usize {
                2
            }
            fn player_cost(&self, _p: usize, _c: &BTreeSet<usize>) -> f64 {
                1e6 - self.0.fetch_add(1, Ordering::Relaxed) as f64
            }
        }
        let game = EverCheaper(AtomicU64::new(0));
        let report = run(
            &game,
            Partition::singletons(2),
            EngineOptions {
                rule: SwitchRule::Utilitarian,
                max_rounds: 0,
                ..EngineOptions::default()
            },
        );
        assert!(!report.converged, "cycling dynamics must not converge");
        assert_eq!(report.rounds, 100 * 2, "cap must clamp to 100 * n");
        assert!(report.switches >= report.rounds, "every round kept moving");
        assert!(report.partition.is_consistent());
    }

    #[test]
    fn skipping_the_stability_audit_reports_unverified() {
        let game = line_game(6.0, 5);
        let audited = run(&game, Partition::singletons(5), EngineOptions::default());
        let skipped = run(
            &game,
            Partition::singletons(5),
            EngineOptions {
                check_stability: false,
                ..EngineOptions::default()
            },
        );
        // Identical dynamics, only the final audit differs.
        assert_eq!(skipped.partition.canonical(), audited.partition.canonical());
        assert_eq!(skipped.switches, audited.switches);
        assert!(audited.nash_stable);
        assert!(
            !skipped.nash_stable,
            "skipped audit must read as unverified"
        );
    }

    /// A fee-sharing game that exposes its distance matrix as a spatial
    /// neighbor order, exercising the shortlist path.
    struct Spatial(FeeSharingGame);
    impl HedonicGame for Spatial {
        fn num_players(&self) -> usize {
            self.0.num_players()
        }
        fn player_cost(&self, p: usize, c: &BTreeSet<usize>) -> f64 {
            self.0.player_cost(p, c)
        }
        fn coalition_feasible(&self, c: &BTreeSet<usize>) -> bool {
            self.0.coalition_feasible(c)
        }
        fn neighbor_order(&self, player: usize, limit: usize, out: &mut Vec<usize>) -> bool {
            let mut order: Vec<usize> = (0..self.num_players()).filter(|&q| q != player).collect();
            order.sort_by(|&a, &b| {
                self.0.distance[player][a]
                    .total_cmp(&self.0.distance[player][b])
                    .then(a.cmp(&b))
            });
            order.truncate(limit);
            out.extend_from_slice(&order);
            true
        }
    }

    #[test]
    fn generous_shortlist_matches_the_full_scan() {
        // With a cap at least the number of coalitions, the shortlist sees
        // every coalition the full scan sees, so the trajectory is identical.
        let full = run(
            &line_game(6.0, 5),
            Partition::singletons(5),
            EngineOptions::default(),
        );
        let short = run(
            &Spatial(line_game(6.0, 5)),
            Partition::singletons(5),
            EngineOptions {
                shortlist_cap: 8,
                ..EngineOptions::default()
            },
        );
        assert_eq!(short.partition.canonical(), full.partition.canonical());
        assert_eq!(short.switches, full.switches);
        assert!(short.converged);
    }

    #[test]
    fn tight_shortlist_still_converges_to_a_consistent_partition() {
        let report = run(
            &Spatial(line_game(6.0, 5)),
            Partition::singletons(5),
            EngineOptions {
                shortlist_cap: 1,
                ..EngineOptions::default()
            },
        );
        assert!(report.converged);
        assert!(report.partition.is_consistent());
        assert!(report.switches > 0, "nearest neighbor is enough to pair up");
    }

    #[test]
    fn shortlist_cap_is_inert_without_a_neighbor_order() {
        // FeeSharingGame keeps the default `neighbor_order` (returns false),
        // so a positive cap must fall back to the exact full scan.
        let game = line_game(6.0, 5);
        let full = run(&game, Partition::singletons(5), EngineOptions::default());
        let capped = run(
            &game,
            Partition::singletons(5),
            EngineOptions {
                shortlist_cap: 1,
                ..EngineOptions::default()
            },
        );
        assert_eq!(capped.partition.canonical(), full.partition.canonical());
        assert_eq!(capped.switches, full.switches);
    }

    #[test]
    fn round_cap_is_respected() {
        let game = line_game(6.0, 5);
        let report = run(
            &game,
            Partition::singletons(5),
            EngineOptions {
                max_rounds: 1,
                ..EngineOptions::default()
            },
        );
        assert_eq!(report.rounds, 1);
    }
}
