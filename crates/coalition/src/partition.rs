//! Partitions of a player set into coalitions.
//!
//! A [`Partition`] keeps a two-way mapping — player → coalition and
//! coalition → member set — with every player in exactly one coalition at
//! all times. Coalition ids are stable handles; emptied coalitions are kept
//! as tombstones and skipped by iteration, so ids never dangle during a
//! coalition-formation run.
//!
//! # Examples
//!
//! ```
//! use ccs_coalition::partition::Partition;
//!
//! let mut p = Partition::singletons(4);
//! assert_eq!(p.num_coalitions(), 4);
//! let target = p.coalition_of(1);
//! p.move_to_coalition(0, target);
//! assert_eq!(p.num_coalitions(), 3);
//! assert_eq!(p.members(target).len(), 2);
//! ```

use std::collections::BTreeSet;
use std::fmt;

/// Stable handle of a coalition inside one [`Partition`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CoalitionId(usize);

impl CoalitionId {
    /// The raw slot index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for CoalitionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// A partition of players `{0, .., n-1}` into nonempty coalitions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// Coalition slot of each player.
    assignment: Vec<usize>,
    /// Member sets per slot; empty slots are tombstones.
    slots: Vec<BTreeSet<usize>>,
}

impl Partition {
    /// The all-singletons partition of `n` players.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn singletons(n: usize) -> Self {
        assert!(n > 0, "partition needs at least one player");
        Partition {
            assignment: (0..n).collect(),
            slots: (0..n).map(|i| BTreeSet::from([i])).collect(),
        }
    }

    /// The grand-coalition partition of `n` players.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn grand_coalition(n: usize) -> Self {
        assert!(n > 0, "partition needs at least one player");
        Partition {
            assignment: vec![0; n],
            slots: vec![(0..n).collect()],
        }
    }

    /// Builds a partition from explicit groups.
    ///
    /// # Panics
    ///
    /// Panics if the groups are not a partition of `{0, .., n-1}` (missing,
    /// duplicated or out-of-range players, or an empty group).
    pub fn from_groups(n: usize, groups: &[Vec<usize>]) -> Self {
        assert!(n > 0, "partition needs at least one player");
        let mut assignment = vec![usize::MAX; n];
        let mut slots = Vec::with_capacity(groups.len());
        for (slot, group) in groups.iter().enumerate() {
            assert!(!group.is_empty(), "group {slot} is empty");
            let mut members = BTreeSet::new();
            for &p in group {
                assert!(p < n, "player {p} out of range");
                assert!(
                    assignment[p] == usize::MAX,
                    "player {p} appears in more than one group"
                );
                assignment[p] = slot;
                members.insert(p);
            }
            slots.push(members);
        }
        assert!(
            assignment.iter().all(|&a| a != usize::MAX),
            "every player must appear in exactly one group"
        );
        Partition { assignment, slots }
    }

    /// Number of players.
    pub fn num_players(&self) -> usize {
        self.assignment.len()
    }

    /// Number of (nonempty) coalitions.
    pub fn num_coalitions(&self) -> usize {
        self.slots.iter().filter(|s| !s.is_empty()).count()
    }

    /// Number of coalition slots, **including** tombstones — the exclusive
    /// upper bound on [`CoalitionId::index`]. Lets callers size per-slot
    /// bookkeeping (the engine's dirty-slot stamps) without chasing ids.
    pub fn num_slots(&self) -> usize {
        self.slots.len()
    }

    /// The coalition slot with the given raw index (see
    /// [`CoalitionId::index`]). Intended for callers that persist slot
    /// indices across mutations — ids are stable handles, so the round-trip
    /// is exact; the slot may have become a tombstone in the meantime.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.num_slots()`.
    pub fn slot(&self, index: usize) -> CoalitionId {
        assert!(index < self.slots.len(), "slot index {index} out of range");
        CoalitionId(index)
    }

    /// The coalition a player currently belongs to.
    ///
    /// # Panics
    ///
    /// Panics if `player` is out of range.
    pub fn coalition_of(&self, player: usize) -> CoalitionId {
        CoalitionId(self.assignment[player])
    }

    /// Member set of a coalition (empty for tombstoned slots).
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this partition.
    pub fn members(&self, id: CoalitionId) -> &BTreeSet<usize> {
        &self.slots[id.0]
    }

    /// Iterator over the nonempty coalitions as `(id, members)`.
    pub fn coalitions(&self) -> impl Iterator<Item = (CoalitionId, &BTreeSet<usize>)> {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.is_empty())
            .map(|(i, s)| (CoalitionId(i), s))
    }

    /// Moves a player into an existing coalition. No-op if already there.
    ///
    /// Returns the player's previous coalition id.
    ///
    /// # Panics
    ///
    /// Panics if `player` is out of range or `target` is a tombstone (an
    /// emptied coalition).
    pub fn move_to_coalition(&mut self, player: usize, target: CoalitionId) -> CoalitionId {
        let from = CoalitionId(self.assignment[player]);
        if from == target {
            return from;
        }
        assert!(
            !self.slots[target.0].is_empty(),
            "cannot join tombstoned coalition {target}"
        );
        self.slots[from.0].remove(&player);
        self.slots[target.0].insert(player);
        self.assignment[player] = target.0;
        from
    }

    /// Moves a player out into a brand-new singleton coalition.
    ///
    /// Returns `(previous, new)` coalition ids. If the player was already a
    /// singleton, nothing changes and `previous == new`.
    pub fn move_to_singleton(&mut self, player: usize) -> (CoalitionId, CoalitionId) {
        let from = CoalitionId(self.assignment[player]);
        if self.slots[from.0].len() == 1 {
            return (from, from);
        }
        self.slots[from.0].remove(&player);
        // Reuse a tombstone slot if any, else push.
        let slot = match self.slots.iter().position(|s| s.is_empty()) {
            Some(i) => {
                self.slots[i].insert(player);
                i
            }
            None => {
                self.slots.push(BTreeSet::from([player]));
                self.slots.len() - 1
            }
        };
        self.assignment[player] = slot;
        (from, CoalitionId(slot))
    }

    /// Canonical form: member lists sorted internally and by first member.
    ///
    /// Two partitions describe the same grouping iff their canonical forms
    /// are equal; used for switch-history bookkeeping and tests.
    pub fn canonical(&self) -> Vec<Vec<usize>> {
        let mut groups: Vec<Vec<usize>> = self
            .coalitions()
            .map(|(_, members)| members.iter().copied().collect())
            .collect();
        groups.sort();
        groups
    }

    /// Checks internal consistency (every player in exactly the slot its
    /// assignment claims). Intended for `debug_assert!` and tests.
    pub fn is_consistent(&self) -> bool {
        let n = self.num_players();
        let mut seen = vec![false; n];
        for (slot, members) in self.slots.iter().enumerate() {
            for &p in members {
                if p >= n || seen[p] || self.assignment[p] != slot {
                    return false;
                }
                seen[p] = true;
            }
        }
        seen.into_iter().all(|s| s)
    }
}

impl fmt::Display for Partition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let groups = self.canonical();
        write!(f, "[")?;
        for (k, g) in groups.iter().enumerate() {
            if k > 0 {
                write!(f, " | ")?;
            }
            for (j, p) in g.iter().enumerate() {
                if j > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{p}")?;
            }
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_and_grand() {
        let s = Partition::singletons(3);
        assert_eq!(s.num_players(), 3);
        assert_eq!(s.num_coalitions(), 3);
        assert!(s.is_consistent());
        let g = Partition::grand_coalition(3);
        assert_eq!(g.num_coalitions(), 1);
        assert_eq!(g.members(g.coalition_of(2)).len(), 3);
        assert!(g.is_consistent());
    }

    #[test]
    fn from_groups_builds_partition() {
        let p = Partition::from_groups(5, &[vec![0, 2], vec![1], vec![3, 4]]);
        assert_eq!(p.num_coalitions(), 3);
        assert_eq!(p.coalition_of(0), p.coalition_of(2));
        assert_ne!(p.coalition_of(0), p.coalition_of(1));
        assert!(p.is_consistent());
        assert_eq!(p.canonical(), vec![vec![0, 2], vec![1], vec![3, 4]]);
    }

    #[test]
    #[should_panic(expected = "appears in more than one group")]
    fn from_groups_rejects_duplicates() {
        let _ = Partition::from_groups(3, &[vec![0, 1], vec![1, 2]]);
    }

    #[test]
    #[should_panic(expected = "every player must appear")]
    fn from_groups_rejects_missing() {
        let _ = Partition::from_groups(3, &[vec![0, 1]]);
    }

    #[test]
    fn move_to_coalition_updates_both_sides() {
        let mut p = Partition::singletons(4);
        let target = p.coalition_of(3);
        let from = p.move_to_coalition(0, target);
        assert_eq!(from, CoalitionId(0));
        assert_eq!(p.coalition_of(0), target);
        assert_eq!(
            p.members(target).iter().copied().collect::<Vec<_>>(),
            vec![0, 3]
        );
        assert!(p.members(from).is_empty(), "old slot is a tombstone");
        assert_eq!(p.num_coalitions(), 3);
        assert!(p.is_consistent());
        // No-op move.
        let same = p.move_to_coalition(0, target);
        assert_eq!(same, target);
        assert!(p.is_consistent());
    }

    #[test]
    #[should_panic(expected = "tombstoned")]
    fn joining_tombstone_panics() {
        let mut p = Partition::singletons(3);
        let dead = p.coalition_of(0);
        p.move_to_coalition(0, p.coalition_of(1));
        p.move_to_coalition(2, dead);
    }

    #[test]
    fn move_to_singleton_reuses_tombstones() {
        let mut p = Partition::grand_coalition(3);
        let slots_before = 1;
        let (_, s1) = p.move_to_singleton(0);
        assert_eq!(p.members(s1).iter().copied().collect::<Vec<_>>(), vec![0]);
        assert_eq!(p.num_coalitions(), 2);
        // Already a singleton: no-op.
        let (a, b) = p.move_to_singleton(0);
        assert_eq!(a, b);
        // Move 0 back, leaving a tombstone, then split 1 out: tombstone reused.
        p.move_to_coalition(0, p.coalition_of(1));
        let (_, s2) = p.move_to_singleton(1);
        assert!(s2.index() >= slots_before);
        assert!(p.is_consistent());
    }

    #[test]
    fn canonical_ignores_slot_numbering() {
        let mut a = Partition::singletons(4);
        a.move_to_coalition(1, a.coalition_of(0));
        let mut b = Partition::singletons(4);
        b.move_to_coalition(0, b.coalition_of(1));
        assert_eq!(a.canonical(), b.canonical());
        assert_eq!(a.canonical(), vec![vec![0, 1], vec![2], vec![3]]);
    }

    #[test]
    fn display_shows_groups() {
        let p = Partition::from_groups(3, &[vec![0, 2], vec![1]]);
        assert_eq!(p.to_string(), "[0,2 | 1]");
    }

    #[test]
    fn coalitions_iterator_skips_tombstones() {
        let mut p = Partition::singletons(3);
        p.move_to_coalition(0, p.coalition_of(1));
        let ids: Vec<CoalitionId> = p.coalitions().map(|(id, _)| id).collect();
        assert_eq!(ids.len(), 2);
        assert!(ids.iter().all(|id| !p.members(*id).is_empty()));
    }
}
