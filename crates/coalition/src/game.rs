//! The hedonic-game abstraction coalition formation runs against.
//!
//! A [`HedonicGame`] tells the engine two things: how much a player pays
//! inside a given coalition (preferences are cost-minimizing), and which
//! coalitions are admissible. The CCS core implements this trait with the
//! comprehensive-cost model; the tests here use small synthetic games.

use std::collections::BTreeSet;

/// A cost-based hedonic coalition-formation game over players `{0, .., n-1}`.
///
/// Lower cost is preferred. Implementations must be deterministic and
/// finite-valued on every feasible coalition containing the player.
///
/// The `Sync` supertrait lets the engine evaluate a player's candidate
/// moves in parallel (`ccs-par`); determinism then guarantees the selected
/// move — and therefore the whole partition trajectory — is identical at
/// any thread count.
pub trait HedonicGame: Sync {
    /// Number of players.
    fn num_players(&self) -> usize;

    /// The cost player `player` pays as a member of `coalition`.
    ///
    /// `coalition` always contains `player`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `player` is not in `coalition`.
    fn player_cost(&self, player: usize, coalition: &BTreeSet<usize>) -> f64;

    /// [`player_cost`](HedonicGame::player_cost) for callers that hold the
    /// coalition as a **sorted slice** of member indices instead of a set —
    /// the engine's allocation-free probe path. Must return exactly the
    /// same value as `player_cost` on the equivalent set. The default
    /// materializes a temporary set; games with flat-key memos (the CCS
    /// core) override it to skip every per-probe allocation.
    fn player_cost_sorted(&self, player: usize, members: &[usize]) -> f64 {
        debug_assert!(
            members.windows(2).all(|w| w[0] < w[1]),
            "members must be sorted and duplicate-free"
        );
        let coalition: BTreeSet<usize> = members.iter().copied().collect();
        self.player_cost(player, &coalition)
    }

    /// Whether a coalition is admissible at all (e.g. within service
    /// capacity). The engine never forms infeasible coalitions. Singletons
    /// must always be feasible so every player has a fallback.
    fn coalition_feasible(&self, coalition: &BTreeSet<usize>) -> bool {
        let _ = coalition;
        true
    }

    /// [`coalition_feasible`](HedonicGame::coalition_feasible) on a sorted
    /// member slice (see [`player_cost_sorted`](HedonicGame::player_cost_sorted)
    /// for the contract). Must agree with `coalition_feasible` on the
    /// equivalent set.
    fn coalition_feasible_sorted(&self, members: &[usize]) -> bool {
        debug_assert!(
            members.windows(2).all(|w| w[0] < w[1]),
            "members must be sorted and duplicate-free"
        );
        let coalition: BTreeSet<usize> = members.iter().copied().collect();
        self.coalition_feasible(&coalition)
    }

    /// Optional cap on the number of coalitions (e.g. available chargers).
    /// `None` means unlimited.
    fn max_coalitions(&self) -> Option<usize> {
        None
    }

    /// Optional spatial shortlist hook: append up to `limit` players to
    /// `out` in deterministic nearest-first order from `player` and return
    /// `true`. The default returns `false` ("no spatial structure"), which
    /// makes the engine scan every coalition exactly. Only consulted when
    /// `EngineOptions::shortlist_cap > 0`; implementations must produce the
    /// same order on every call with the same arguments — the engine's
    /// determinism guarantee inherits it.
    fn neighbor_order(&self, player: usize, limit: usize, out: &mut Vec<usize>) -> bool {
        let _ = (player, limit, out);
        false
    }

    /// Total social cost of a coalition structure: sum of all player costs.
    fn social_cost<'a, I>(&self, coalitions: I) -> f64
    where
        I: IntoIterator<Item = &'a BTreeSet<usize>>,
    {
        coalitions
            .into_iter()
            .map(|c| c.iter().map(|&p| self.player_cost(p, c)).sum::<f64>())
            .sum()
    }
}

impl<G: HedonicGame + ?Sized> HedonicGame for &G {
    fn num_players(&self) -> usize {
        (**self).num_players()
    }
    fn player_cost(&self, player: usize, coalition: &BTreeSet<usize>) -> f64 {
        (**self).player_cost(player, coalition)
    }
    fn player_cost_sorted(&self, player: usize, members: &[usize]) -> f64 {
        (**self).player_cost_sorted(player, members)
    }
    fn coalition_feasible(&self, coalition: &BTreeSet<usize>) -> bool {
        (**self).coalition_feasible(coalition)
    }
    fn coalition_feasible_sorted(&self, members: &[usize]) -> bool {
        (**self).coalition_feasible_sorted(members)
    }
    fn max_coalitions(&self) -> Option<usize> {
        (**self).max_coalitions()
    }
    fn neighbor_order(&self, player: usize, limit: usize, out: &mut Vec<usize>) -> bool {
        (**self).neighbor_order(player, limit, out)
    }
}

/// A simple synthetic game used by unit tests across this crate: players
/// split a per-coalition fixed fee equally and each additionally pays a
/// personal distance to the coalition's cheapest "anchor" player.
///
/// With `fee > 0` cooperation is attractive but crowding (max size) caps it,
/// exercising both the improvement and feasibility paths of the engine.
#[derive(Debug, Clone)]
pub struct FeeSharingGame {
    /// Per-coalition fixed fee, split equally.
    pub fee: f64,
    /// Pairwise "distance" matrix (symmetric, zero diagonal).
    pub distance: Vec<Vec<f64>>,
    /// Maximum feasible coalition size.
    pub max_size: usize,
}

impl FeeSharingGame {
    /// Builds the game from a distance matrix.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square or `max_size == 0`.
    pub fn new(fee: f64, distance: Vec<Vec<f64>>, max_size: usize) -> Self {
        let n = distance.len();
        assert!(
            distance.iter().all(|row| row.len() == n),
            "matrix not square"
        );
        assert!(max_size >= 1, "max coalition size must be >= 1");
        FeeSharingGame {
            fee,
            distance,
            max_size,
        }
    }
}

impl HedonicGame for FeeSharingGame {
    fn num_players(&self) -> usize {
        self.distance.len()
    }

    fn player_cost(&self, player: usize, coalition: &BTreeSet<usize>) -> f64 {
        assert!(coalition.contains(&player), "player must be a member");
        let share = self.fee / coalition.len() as f64;
        // Distance to the coalition "center": the member minimizing total
        // distance (deterministic tie-break on index via min_by ordering).
        let center = coalition
            .iter()
            .min_by(|&&a, &&b| {
                let da: f64 = coalition.iter().map(|&q| self.distance[a][q]).sum();
                let db: f64 = coalition.iter().map(|&q| self.distance[b][q]).sum();
                da.total_cmp(&db).then(a.cmp(&b))
            })
            .copied()
            .expect("nonempty coalition");
        share + self.distance[player][center]
    }

    fn coalition_feasible(&self, coalition: &BTreeSet<usize>) -> bool {
        coalition.len() <= self.max_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_game(fee: f64, max_size: usize) -> FeeSharingGame {
        // Four players on a line at 0, 1, 2, 10.
        let pos: &[f64] = &[0.0, 1.0, 2.0, 10.0];
        let distance = pos
            .iter()
            .map(|a| pos.iter().map(|b| (a - b).abs()).collect())
            .collect();
        FeeSharingGame::new(fee, distance, max_size)
    }

    #[test]
    fn singleton_pays_full_fee() {
        let g = line_game(6.0, 4);
        let solo = BTreeSet::from([2]);
        assert_eq!(g.player_cost(2, &solo), 6.0);
    }

    #[test]
    fn sharing_reduces_fee_share() {
        let g = line_game(6.0, 4);
        let pair = BTreeSet::from([0, 1]);
        // center is player 0 or 1 (tie on total distance 1.0 → index 0).
        assert_eq!(g.player_cost(0, &pair), 3.0);
        assert_eq!(g.player_cost(1, &pair), 4.0);
    }

    #[test]
    fn feasibility_caps_size() {
        let g = line_game(6.0, 2);
        assert!(g.coalition_feasible(&BTreeSet::from([0, 1])));
        assert!(!g.coalition_feasible(&BTreeSet::from([0, 1, 2])));
    }

    #[test]
    fn social_cost_sums_members() {
        let g = line_game(6.0, 4);
        let c1 = BTreeSet::from([0, 1]);
        let c2 = BTreeSet::from([2, 3]);
        let total = g.social_cost([&c1, &c2]);
        let manual = g.player_cost(0, &c1)
            + g.player_cost(1, &c1)
            + g.player_cost(2, &c2)
            + g.player_cost(3, &c2);
        assert!((total - manual).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "player must be a member")]
    fn cost_requires_membership() {
        let g = line_game(6.0, 4);
        let c = BTreeSet::from([0, 1]);
        let _ = g.player_cost(3, &c);
    }
}
