//! A sharded, thread-safe memo of per-coalition evaluations.
//!
//! CCSGA's best-response dynamics re-price the same coalition compositions
//! over and over: a composition visited in round `r` is typically probed
//! again by several players in round `r + 1`. [`CoalitionCache`] memoizes
//! any per-composition value (the CCS core stores the best facility choice
//! plus the member shares) behind `parking_lot` mutexes, sharded by key
//! hash so the engine's parallel candidate evaluations rarely contend.
//!
//! Hits and misses are counted on the global telemetry registry as
//! `cache.hits` / `cache.misses`, so run reports show how much re-pricing
//! the memo absorbed.
//!
//! Determinism: values are produced by the caller's closure, which must be
//! a pure function of the composition. Two threads racing on the same
//! missing key may both compute the value (the compute runs outside the
//! shard lock), but only the first insert is kept and both computed values
//! are identical, so observable behaviour does not depend on scheduling.

use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::hash::BuildHasher;
use std::sync::Arc;

use crate::fasthash::FastBuildHasher;

use parking_lot::Mutex;

/// Number of independent shards; a small power of two keeps the modulo
/// cheap while comfortably out-counting the worker threads.
const SHARDS: usize = 16;

/// One shard: a fast-hashed map from sorted member list to shared value.
type Shard<V> = Mutex<HashMap<Vec<usize>, Arc<V>, FastBuildHasher>>;

/// A thread-safe memo from coalition composition (sorted member indices)
/// to a shared, immutable evaluation result.
pub struct CoalitionCache<V> {
    shards: Vec<Shard<V>>,
}

impl<V> Default for CoalitionCache<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> fmt::Debug for CoalitionCache<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CoalitionCache")
            .field("entries", &self.len())
            .finish()
    }
}

impl<V> CoalitionCache<V> {
    /// Creates an empty cache.
    pub fn new() -> Self {
        CoalitionCache {
            shards: (0..SHARDS)
                .map(|_| Mutex::new(HashMap::default()))
                .collect(),
        }
    }

    fn shard_of(key: &[usize]) -> usize {
        (FastBuildHasher::default().hash_one(key) as usize) % SHARDS
    }

    /// Returns the memoized value for `coalition`, computing and inserting
    /// it with `compute` on a miss.
    ///
    /// `compute` must be a pure function of the composition; it runs
    /// *outside* the shard lock, so concurrent misses on the same key may
    /// compute redundantly, but the first inserted value wins and all
    /// callers observe it.
    pub fn get_or_insert_with(
        &self,
        coalition: &BTreeSet<usize>,
        compute: impl FnOnce() -> V,
    ) -> Arc<V> {
        let key: Vec<usize> = coalition.iter().copied().collect();
        let shard = &self.shards[Self::shard_of(&key)];
        if let Some(hit) = shard.lock().get(&key) {
            ccs_telemetry::counter!("cache.hits").incr();
            return Arc::clone(hit);
        }
        ccs_telemetry::counter!("cache.misses").incr();
        let value = Arc::new(compute());
        let mut guard = shard.lock();
        Arc::clone(guard.entry(key).or_insert(value))
    }

    /// [`CoalitionCache::get_or_insert_with`] keyed directly by a sorted
    /// member slice, so the hit path performs **no allocation at all** —
    /// the engine's worklist probes price warm compositions this way. The
    /// owned `Vec` key is only built on a miss, alongside the (much more
    /// expensive) value computation.
    pub fn get_or_insert_by_key(&self, key: &[usize], compute: impl FnOnce() -> V) -> Arc<V> {
        debug_assert!(key.windows(2).all(|w| w[0] < w[1]), "key must be sorted");
        let shard = &self.shards[Self::shard_of(key)];
        if let Some(hit) = shard.lock().get(key) {
            ccs_telemetry::counter!("cache.hits").incr();
            return Arc::clone(hit);
        }
        ccs_telemetry::counter!("cache.misses").incr();
        let value = Arc::new(compute());
        let mut guard = shard.lock();
        Arc::clone(guard.entry(key.to_vec()).or_insert(value))
    }

    /// Returns the memoized value for `coalition` without computing.
    pub fn get(&self, coalition: &BTreeSet<usize>) -> Option<Arc<V>> {
        let key: Vec<usize> = coalition.iter().copied().collect();
        self.get_by_key(&key)
    }

    /// [`CoalitionCache::get`] for callers that already hold the sorted
    /// member indices as a slice — no `BTreeSet` or key allocation needed
    /// (the incremental-delta hint path probes `coalition ∖ {player}` this
    /// way on every candidate move).
    pub fn get_by_key(&self, key: &[usize]) -> Option<Arc<V>> {
        debug_assert!(key.windows(2).all(|w| w[0] < w[1]), "key must be sorted");
        self.shards[Self::shard_of(key)]
            .lock()
            .get(key)
            .map(Arc::clone)
    }

    /// Number of memoized compositions.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every memoized composition (e.g. when the underlying problem
    /// instance changes).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn set(indices: &[usize]) -> BTreeSet<usize> {
        indices.iter().copied().collect()
    }

    #[test]
    fn memoizes_per_composition() {
        let cache = CoalitionCache::new();
        let computes = AtomicUsize::new(0);
        let eval = |c: &BTreeSet<usize>| {
            cache.get_or_insert_with(c, || {
                computes.fetch_add(1, Ordering::Relaxed);
                c.len() * 10
            })
        };
        assert_eq!(*eval(&set(&[0, 2])), 20);
        assert_eq!(*eval(&set(&[0, 2])), 20);
        assert_eq!(*eval(&set(&[1])), 10);
        assert_eq!(computes.load(Ordering::Relaxed), 2);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn by_key_and_by_set_share_entries() {
        let cache = CoalitionCache::new();
        let computes = AtomicUsize::new(0);
        let v1 = cache.get_or_insert_by_key(&[1, 4, 6], || {
            computes.fetch_add(1, Ordering::Relaxed);
            11usize
        });
        assert_eq!(*v1, 11);
        // The set-keyed API must hit the slice-keyed entry and vice versa.
        let v2 = cache.get_or_insert_with(&set(&[1, 4, 6]), || {
            computes.fetch_add(1, Ordering::Relaxed);
            99
        });
        assert_eq!(*v2, 11);
        let v3 = cache.get_or_insert_by_key(&[1, 4, 6], || {
            computes.fetch_add(1, Ordering::Relaxed);
            99
        });
        assert_eq!(*v3, 11);
        assert_eq!(computes.load(Ordering::Relaxed), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_compositions_do_not_collide() {
        let cache = CoalitionCache::new();
        for a in 0..10usize {
            for b in (a + 1)..10 {
                cache.get_or_insert_with(&set(&[a, b]), || (a, b));
            }
        }
        assert_eq!(cache.len(), 45);
        assert_eq!(*cache.get(&set(&[3, 7])).unwrap(), (3, 7));
        assert!(cache.get(&set(&[3, 7, 9])).is_none());
    }

    #[test]
    fn clear_empties_every_shard() {
        let cache = CoalitionCache::new();
        for i in 0..100usize {
            cache.get_or_insert_with(&set(&[i]), || i);
        }
        assert_eq!(cache.len(), 100);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn concurrent_mixed_access_is_consistent() {
        let cache = CoalitionCache::new();
        std::thread::scope(|scope| {
            for t in 0..4usize {
                let cache = &cache;
                scope.spawn(move || {
                    for i in 0..200usize {
                        let key = set(&[i % 50, 50 + (i + t) % 7]);
                        let value = cache.get_or_insert_with(&key, || key.len());
                        assert_eq!(*value, key.len());
                    }
                });
            }
        });
        assert!(cache.len() <= 50 * 7);
    }
}
