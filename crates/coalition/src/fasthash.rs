//! A fast, deterministic hasher for the hot memo maps.
//!
//! The engine's warm path is dominated by hash probes: every best-response
//! candidate is one [`CoalitionCache`](crate::cache::CoalitionCache)
//! lookup, and every facility evaluation is one gathering-point memo
//! lookup. `std`'s default SipHash is DoS-resistant but costs ~1.5 ns per
//! byte plus finalization — an order of magnitude more than the multiply-
//! xor construction below on the short integer keys these maps use
//! (`[usize]` member lists, `[u32]` flat keys).
//!
//! Keys here are small sorted id lists coming from the scheduler itself,
//! not attacker-controlled input, so hash-flooding resistance buys
//! nothing. Determinism, on the other hand, is load-bearing: this hasher
//! is seed-free, so shard choice and map layout are identical across runs
//! and thread counts (not that layout is ever observable — both memos are
//! pure-function caches).

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier from the golden-ratio family (same constant class FxHash
/// uses); spreads consecutive ids across the full 64-bit space.
const K: u64 = 0x517c_c1b7_2722_0a95;

/// A multiply-xor hasher: each word is folded in with a rotate + xor +
/// multiply round. Not collision-resistant against adversaries — do not
/// use for untrusted keys.
#[derive(Debug, Default)]
pub struct FastHasher {
    state: u64,
}

impl FastHasher {
    #[inline]
    fn fold(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.fold(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.fold(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.fold(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.fold(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.fold(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.fold(n as u64);
    }
}

/// `BuildHasher` for [`FastHasher`] — plug into `HashMap::with_hasher`.
pub type FastBuildHasher = BuildHasherDefault<FastHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash + ?Sized>(v: &T) -> u64 {
        FastBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_and_discriminating() {
        let a = hash_of(&[1usize, 4, 6][..]);
        assert_eq!(a, hash_of(&[1usize, 4, 6][..]), "same key, same hash");
        assert_ne!(a, hash_of(&[1usize, 4, 7][..]));
        assert_ne!(a, hash_of(&[1usize, 4][..]));
        // Adjacent single-element keys must not collide (shard spread).
        let singles: std::collections::HashSet<u64> =
            (0..1000usize).map(|i| hash_of(&[i][..])).collect();
        assert_eq!(singles.len(), 1000);
    }

    #[test]
    fn u32_and_byte_paths_work() {
        let a = hash_of(&[7u32, 9, 11][..]);
        assert_eq!(a, hash_of(&[7u32, 9, 11][..]));
        assert_ne!(a, hash_of(&[7u32, 9, 12][..]));
        assert_ne!(hash_of("abc"), hash_of("abd"));
    }
}
