//! Property-based tests of the coalition-formation engine.

use ccs_coalition::engine::{run, EngineOptions, SwitchRule};
use ccs_coalition::game::{FeeSharingGame, HedonicGame};
use ccs_coalition::partition::Partition;
use ccs_coalition::stability::{find_blocking_move, is_nash_stable};
use proptest::prelude::*;

fn game_from(positions: &[f64], fee: f64, max_size: usize) -> FeeSharingGame {
    let distance = positions
        .iter()
        .map(|a| positions.iter().map(|b| (a - b).abs()).collect())
        .collect();
    FeeSharingGame::new(fee, distance, max_size)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn engine_always_converges_and_stays_consistent(
        positions in proptest::collection::vec(0.0f64..100.0, 2..10),
        fee in 0.0f64..20.0,
        rule_pick in 0usize..3,
    ) {
        let n = positions.len();
        let game = game_from(&positions, fee, n);
        let rule = [
            SwitchRule::SelfishWithHistory,
            SwitchRule::SelfishWithConsent,
            SwitchRule::Utilitarian,
        ][rule_pick];
        let report = run(
            &game,
            Partition::singletons(n),
            EngineOptions { rule, ..Default::default() },
        );
        prop_assert!(report.converged, "rule {rule:?} must converge");
        prop_assert!(report.partition.is_consistent());
        prop_assert_eq!(report.partition.num_players(), n);
    }

    #[test]
    fn history_rule_terminates_individually_rational(
        positions in proptest::collection::vec(0.0f64..100.0, 2..9),
        fee in 0.0f64..15.0,
    ) {
        // General hedonic games need not admit a Nash-stable partition at
        // all (e.g. two players where one always wants to pair up and the
        // other always wants to flee), so the engine's guarantee is
        // termination plus *individual rationality*: the singleton escape
        // is never history-blocked, so at a fixed point nobody prefers
        // being alone. Full Nash stability is asserted on the CCS game
        // itself (ccs-core tests), where it holds empirically.
        let n = positions.len();
        let game = game_from(&positions, fee, n);
        let report = run(&game, Partition::singletons(n), EngineOptions::default());
        prop_assert!(report.converged);
        for player in 0..n {
            let members = report.partition.members(report.partition.coalition_of(player));
            let current = game.player_cost(player, members);
            let solo = game.player_cost(player, &std::collections::BTreeSet::from([player]));
            prop_assert!(
                current <= solo + 1e-9,
                "player {player} pays {current} but solo costs {solo} in {}",
                report.partition
            );
        }
        // A residual blocking move, if any, can only be a join (which the
        // no-revisit history may legitimately veto) — never a solo exit.
        if let Some(mv) = find_blocking_move(&game, &report.partition, 1e-9) {
            prop_assert!(mv.target.is_some(), "solo exits are never blocked: {mv:?}");
        }
    }

    #[test]
    fn utilitarian_dynamics_never_increase_social_cost(
        positions in proptest::collection::vec(0.0f64..100.0, 2..9),
        fee in 0.0f64..15.0,
    ) {
        let n = positions.len();
        let game = game_from(&positions, fee, n);
        let initial = Partition::singletons(n);
        let before = game.social_cost(initial.coalitions().map(|(_, m)| m));
        let report = run(
            &game,
            initial,
            EngineOptions { rule: SwitchRule::Utilitarian, ..Default::default() },
        );
        prop_assert!(report.final_social_cost <= before + 1e-9);
    }

    #[test]
    fn feasibility_cap_is_never_violated(
        positions in proptest::collection::vec(0.0f64..50.0, 3..9),
        fee in 1.0f64..30.0,
        cap in 1usize..4,
    ) {
        let n = positions.len();
        let game = game_from(&positions, fee, cap);
        let report = run(&game, Partition::singletons(n), EngineOptions::default());
        for (_, members) in report.partition.coalitions() {
            prop_assert!(members.len() <= cap);
        }
    }

    #[test]
    fn partition_moves_preserve_the_partition_property(
        n in 2usize..12,
        moves in proptest::collection::vec((0usize..12, 0usize..12, any::<bool>()), 0..30),
    ) {
        let mut p = Partition::singletons(n);
        for (player, target_player, go_solo) in moves {
            let player = player % n;
            if go_solo {
                p.move_to_singleton(player);
            } else {
                let target = p.coalition_of(target_player % n);
                p.move_to_coalition(player, target);
            }
            prop_assert!(p.is_consistent());
            let covered: usize = p.coalitions().map(|(_, m)| m.len()).sum();
            prop_assert_eq!(covered, n);
        }
    }

    #[test]
    fn stability_check_agrees_with_zero_fee_intuition(
        positions in proptest::collection::vec(0.0f64..100.0, 2..8),
    ) {
        // With no fee to share, singletons are always Nash-stable.
        let n = positions.len();
        let game = game_from(&positions, 0.0, n);
        prop_assert!(is_nash_stable(&game, &Partition::singletons(n), 1e-9));
    }
}
