//! Integration tests of the activity-driven worklist: bit-identity with the
//! reference full scan across rules, shortlist caps and thread counts, and
//! a regression test that provably quiescent players are never probed.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use ccs_coalition::engine::{run, ConvergenceReport, EngineOptions, SwitchRule};
use ccs_coalition::game::{FeeSharingGame, HedonicGame};
use ccs_coalition::partition::Partition;
use proptest::prelude::*;

/// [`FeeSharingGame`] with a nearest-first neighbor order limited to
/// `reach` (players farther away are never listed, whatever the limit) and
/// a per-player count of cost evaluations. The reach bound lets tests build
/// spatially isolated groups whose shortlists do not cross; the counters
/// observe exactly which players the engine probes.
struct Spatial {
    inner: FeeSharingGame,
    reach: f64,
    evals: Vec<AtomicUsize>,
}

impl Spatial {
    fn new(positions: &[f64], fee: f64, max_size: usize, reach: f64) -> Self {
        let distance = positions
            .iter()
            .map(|a| positions.iter().map(|b| (a - b).abs()).collect())
            .collect();
        let n = positions.len();
        Spatial {
            inner: FeeSharingGame::new(fee, distance, max_size),
            reach,
            evals: (0..n).map(|_| AtomicUsize::new(0)).collect(),
        }
    }

    fn evals_of(&self, player: usize) -> usize {
        self.evals[player].load(Ordering::Relaxed)
    }
}

impl HedonicGame for Spatial {
    fn num_players(&self) -> usize {
        self.inner.num_players()
    }

    fn player_cost(&self, player: usize, coalition: &BTreeSet<usize>) -> f64 {
        self.evals[player].fetch_add(1, Ordering::Relaxed);
        self.inner.player_cost(player, coalition)
    }

    fn coalition_feasible(&self, coalition: &BTreeSet<usize>) -> bool {
        self.inner.coalition_feasible(coalition)
    }

    fn neighbor_order(&self, player: usize, limit: usize, out: &mut Vec<usize>) -> bool {
        let mut order: Vec<usize> = (0..self.num_players())
            .filter(|&q| q != player && self.inner.distance[player][q] <= self.reach)
            .collect();
        order.sort_by(|&a, &b| {
            self.inner.distance[player][a]
                .total_cmp(&self.inner.distance[player][b])
                .then(a.cmp(&b))
        });
        order.truncate(limit);
        out.extend_from_slice(&order);
        true
    }
}

/// Everything a run's observable outcome consists of; two runs are "the
/// same" exactly when these match (the social cost down to the bit).
fn fingerprint(report: &ConvergenceReport) -> (String, usize, usize, bool, u64) {
    (
        report.partition.to_string(),
        report.rounds,
        report.switches,
        report.converged,
        report.final_social_cost.to_bits(),
    )
}

/// Serializes mutations of the global `ccs_par` thread count across
/// concurrently running property cases.
static THREADS: Mutex<()> = Mutex::new(());

/// Restores the default thread count even when an assertion unwinds.
struct ThreadReset;
impl Drop for ThreadReset {
    fn drop(&mut self) {
        ccs_par::set_threads(0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The worklist engine must replay the reference full scan bit for bit:
    /// same partition, same round/switch counts, same social-cost bits —
    /// for every rule, in exact and shortlist candidate modes, at one and
    /// at four worker threads.
    #[test]
    fn worklist_is_bit_identical_to_the_full_scan(
        positions in proptest::collection::vec(0.0f64..100.0, 2..9),
        fee in 0.0f64..15.0,
        max_size in 1usize..6,
        rule_pick in 0usize..3,
        cap in 0usize..3,
    ) {
        let n = positions.len();
        let game = Spatial::new(&positions, fee, max_size.min(n).max(1), f64::INFINITY);
        let rule = [
            SwitchRule::SelfishWithHistory,
            SwitchRule::SelfishWithConsent,
            SwitchRule::Utilitarian,
        ][rule_pick];
        let opts = |worklist: bool| EngineOptions {
            rule,
            shortlist_cap: cap,
            worklist,
            ..Default::default()
        };
        let _guard = THREADS.lock().unwrap_or_else(|e| e.into_inner());
        let _reset = ThreadReset;
        let reference = fingerprint(&run(&game, Partition::singletons(n), opts(false)));
        for threads in [1usize, 4] {
            ccs_par::set_threads(threads);
            let with_worklist = fingerprint(&run(&game, Partition::singletons(n), opts(true)));
            prop_assert!(
                with_worklist == reference,
                "worklist diverged at {threads} threads: {with_worklist:?} vs {reference:?}"
            );
            let without = fingerprint(&run(&game, Partition::singletons(n), opts(false)));
            prop_assert!(
                without == reference,
                "full scan unstable at {threads} threads: {without:?} vs {reference:?}"
            );
        }
    }
}

/// A player none of whose watched neighbors' coalitions changed must not be
/// probed at all: the far pair (players 5, 6) settles early while the
/// cluster (0..=4) keeps switching, so every later round must skip the pair
/// — observable both as frozen per-player evaluation counts and on the
/// `coalition.probes_skipped` counter.
#[test]
fn quiescent_players_are_never_probed_again() {
    ccs_telemetry::global().enable();
    let positions = [0.0, 2.0, 4.0, 6.0, 8.0, 1000.0, 1001.0];
    let opts = |max_rounds| EngineOptions {
        shortlist_cap: 2,
        check_stability: false,
        max_rounds,
        ..Default::default()
    };

    let game = Spatial::new(&positions, 12.0, 3, 50.0);
    let skipped = ccs_telemetry::counter!("coalition.probes_skipped");
    let before = skipped.get();
    let full = run(&game, Partition::singletons(positions.len()), opts(0));
    let skipped_delta = skipped.get() - before;
    assert!(full.converged);
    assert!(
        full.rounds >= 3,
        "instance must stay active past round 2 for the test to bite, got {} rounds",
        full.rounds
    );
    let far_evals_full = [game.evals_of(5), game.evals_of(6)];

    // Replay only the first two rounds: the far pair's evaluation counts
    // must already be final, i.e. rounds 3.. never touched them. (Both runs
    // include the same final social-cost pass, so the counts are directly
    // comparable.)
    let replay = Spatial::new(&positions, 12.0, 3, 50.0);
    let truncated = run(&replay, Partition::singletons(positions.len()), opts(2));
    assert!(!truncated.converged, "two rounds must not suffice");
    assert_eq!(
        [replay.evals_of(5), replay.evals_of(6)],
        far_evals_full,
        "rounds 3..{} must never evaluate the quiescent far pair",
        full.rounds
    );

    // The skips land on the telemetry counter: the far pair alone accounts
    // for two skipped probes in each round past the second.
    assert!(
        skipped_delta >= 2 * (full.rounds as u64 - 2),
        "expected >= {} skipped probes, counted {}",
        2 * (full.rounds - 2),
        skipped_delta
    );
}
